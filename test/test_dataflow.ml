(* Unit and property tests for the elastic dataflow substrate: graph
   construction, structural checking, and the cycle-accurate simulator. *)

open Pv_dataflow

let mem4 () = Array.make 16 0

(* A generator emitting values [0..n-1] on one output. *)
let counter_gen n =
  Types.Gen
    {
      Types.gen_arity = 1;
      gen_next = (fun s -> if s < n then [| s |] else [||]);
      gen_group = (fun _ -> 0);
    }

let run_graph ?cfg g =
  let mem = mem4 () in
  let outcome, stats = Sim.run ?cfg g (Memif.direct ~latency:1 mem) in
  (outcome, stats, mem)

let cycles_of = function
  | Sim.Finished { cycles } -> cycles
  | o -> Alcotest.failf "expected Finished, got %a" Sim.pp_outcome o

(* --- graph construction -------------------------------------------------- *)

let test_connect_errors () =
  let b = Graph.create () in
  let gen = Graph.add b (counter_gen 4) in
  let sink = Graph.add b Types.Sink in
  Graph.connect b (gen, 0) (sink, 0);
  Alcotest.check_raises "double-wired output"
    (Invalid_argument "connect: output 0 of node 0 (gen) already wired")
    (fun () ->
      let s2 = Graph.add b Types.Sink in
      Graph.connect b (gen, 0) (s2, 0));
  Alcotest.check_raises "bad slot"
    (Invalid_argument "connect: node 1 (sink) has no output slot 3") (fun () ->
      let s2 = Graph.add b Types.Sink in
      Graph.connect b (sink, 3) (s2, 0))

let test_check_unwired () =
  let b = Graph.create () in
  let gen = Graph.add b (counter_gen 4) in
  ignore gen;
  let g = Graph.finalize b in
  match Check.errors g with
  | [ Check.Unwired { dir = "output"; slot = 0; _ } ] -> ()
  | errs ->
      Alcotest.failf "expected one unwired error, got %d" (List.length errs)

let test_check_cycle () =
  (* two unops feeding each other: a combinational cycle *)
  let b = Graph.create () in
  let a = Graph.add b (Types.Unop Types.Neg) in
  let c = Graph.add b (Types.Unop Types.Neg) in
  Graph.connect b (a, 0) (c, 0);
  Graph.connect b (c, 0) (a, 0);
  let g = Graph.finalize b in
  Alcotest.(check bool) "cycle detected"
    true
    (List.exists
       (function Check.Combinational_cycle _ -> true | _ -> false)
       (Check.errors g))

(* --- simulator semantics -------------------------------------------------- *)

(* gen -> unop -> sink chain sustains one token per cycle *)
let test_chain_ii1 () =
  let n = 300 in
  let b = Graph.create () in
  let gen = Graph.add b (counter_gen n) in
  let u1 = Graph.add b (Types.Unop Types.Neg) in
  let u2 = Graph.add b (Types.Unop Types.Neg) in
  let sink = Graph.add b Types.Sink in
  Graph.connect b (gen, 0) (u1, 0);
  Graph.connect b (u1, 0) (u2, 0);
  Graph.connect b (u2, 0) (sink, 0);
  let outcome, stats, _ = run_graph (Graph.finalize b) in
  let c = cycles_of outcome in
  Alcotest.(check bool) "II close to 1" true (c <= n + 8);
  Alcotest.(check int) "each node fired n times" n stats.Sim.node_fires.(1)

(* balanced fork/join diamond also sustains II=1 *)
let test_diamond_ii1 () =
  let n = 200 in
  let b = Graph.create () in
  let gen = Graph.add b (counter_gen n) in
  let fork = Graph.add b (Types.Fork 2) in
  Graph.connect b (gen, 0) (fork, 0);
  let u = Graph.add b (Types.Unop Types.Neg) in
  Graph.connect b (fork, 0) (u, 0);
  let buf = Graph.add b (Types.Buffer { transparent = true; slots = 2 }) in
  Graph.connect b (fork, 1) (buf, 0);
  let add = Graph.add b (Types.Binop Types.Add) in
  Graph.connect b (u, 0) (add, 0);
  Graph.connect b (buf, 0) (add, 1);
  let sink = Graph.add b Types.Sink in
  Graph.connect b (add, 0) (sink, 0);
  let outcome, _, _ = run_graph (Graph.finalize b) in
  Alcotest.(check bool) "II close to 1" true (cycles_of outcome <= n + 10)

(* -x + x = 0 for every token: functional correctness through the diamond *)
let test_diamond_values () =
  let n = 50 in
  let b = Graph.create () in
  let gen = Graph.add b (counter_gen n) in
  let fork = Graph.add b (Types.Fork 2) in
  Graph.connect b (gen, 0) (fork, 0);
  let u = Graph.add b (Types.Unop Types.Neg) in
  Graph.connect b (fork, 0) (u, 0);
  let buf = Graph.add b (Types.Buffer { transparent = true; slots = 2 }) in
  Graph.connect b (fork, 1) (buf, 0);
  let add = Graph.add b (Types.Binop Types.Add) in
  Graph.connect b (u, 0) (add, 0);
  Graph.connect b (buf, 0) (add, 1);
  (* store each sum to memory at address = a counter via a store port *)
  let st = Graph.add b (Types.Store { port = 0 }) in
  let czero = Graph.add b (Types.Const 3) in
  (* address constant 3: all results land on the same word; all must be 0 *)
  let fork2 = Graph.add b (Types.Fork 2) in
  Graph.connect b (add, 0) (fork2, 0);
  Graph.connect b (fork2, 0) (czero, 0);
  Graph.connect b (czero, 0) (st, 0);
  Graph.connect b (fork2, 1) (st, 1);
  let mem = mem4 () in
  mem.(3) <- 42;
  let outcome, _ = Sim.run (Graph.finalize b) (Memif.direct ~latency:1 mem) in
  ignore (cycles_of outcome);
  Alcotest.(check int) "all sums were zero" 0 mem.(3)

(* branch routes by condition *)
let test_branch_routing () =
  let n = 40 in
  let b = Graph.create () in
  let gen = Graph.add b (counter_gen n) in
  let fork = Graph.add b (Types.Fork 2) in
  Graph.connect b (gen, 0) (fork, 0);
  (* cond = value land 1 *)
  let one = Graph.add b (Types.Const 1) in
  let fork1 = Graph.add b (Types.Fork 2) in
  Graph.connect b (fork, 0) (fork1, 0);
  Graph.connect b (fork1, 0) (one, 0);
  let band = Graph.add b (Types.Binop Types.And) in
  Graph.connect b (fork1, 1) (band, 0);
  Graph.connect b (one, 0) (band, 1);
  let br = Graph.add b Types.Branch in
  Graph.connect b (fork, 1) (br, 0);
  Graph.connect b (band, 0) (br, 1);
  (* taken (odd) -> store to addr 0 as count; not taken -> sink *)
  let st = Graph.add b (Types.Store { port = 0 }) in
  let addr = Graph.add b (Types.Const 0) in
  let fork2 = Graph.add b (Types.Fork 2) in
  Graph.connect b (br, 0) (fork2, 0);
  Graph.connect b (fork2, 0) (addr, 0);
  Graph.connect b (addr, 0) (st, 0);
  Graph.connect b (fork2, 1) (st, 1);
  let sink = Graph.add b Types.Sink in
  Graph.connect b (br, 1) (sink, 0);
  let mem = mem4 () in
  let outcome, _ = Sim.run (Graph.finalize b) (Memif.direct ~latency:1 mem) in
  ignore (cycles_of outcome);
  (* last odd value stored is n-1 = 39 *)
  Alcotest.(check int) "last odd token" 39 mem.(0)

(* pipelined binop (latency > 0) preserves order and II; the store's data
   input gets a slack buffer because its address side is one stage longer
   (the same fix the Balance pass applies automatically) *)
let test_pipelined_op () =
  let n = 120 in
  let b = Graph.create () in
  let gen = Graph.add b (counter_gen n) in
  let fork = Graph.add b (Types.Fork 2) in
  Graph.connect b (gen, 0) (fork, 0);
  let mul = Graph.add b (Types.Binop Types.Mul) in
  Graph.connect b (fork, 0) (mul, 0);
  Graph.connect b (fork, 1) (mul, 1);
  let st = Graph.add b (Types.Store { port = 0 }) in
  let addr = Graph.add b (Types.Const 5) in
  let fork2 = Graph.add b (Types.Fork 2) in
  Graph.connect b (mul, 0) (fork2, 0);
  Graph.connect b (fork2, 0) (addr, 0);
  Graph.connect b (addr, 0) (st, 0);
  let slack = Graph.add b (Types.Buffer { transparent = true; slots = 2 }) in
  Graph.connect b (fork2, 1) (slack, 0);
  Graph.connect b (slack, 0) (st, 1);
  let mem = mem4 () in
  let outcome, _ = Sim.run (Graph.finalize b) (Memif.direct ~latency:1 mem) in
  let c = cycles_of outcome in
  Alcotest.(check int) "last square" ((n - 1) * (n - 1)) mem.(5);
  Alcotest.(check bool) "pipelined II close to 1" true (c <= n + 16)

(* load port round-trips values through memory *)
let test_load_port () =
  let n = 10 in
  let b = Graph.create () in
  let gen = Graph.add b (counter_gen n) in
  let load = Graph.add b (Types.Load { port = 0 }) in
  Graph.connect b (gen, 0) (load, 0);
  let st = Graph.add b (Types.Store { port = 1 }) in
  let fork = Graph.add b (Types.Fork 2) in
  Graph.connect b (load, 0) (fork, 0);
  let caddr = Graph.add b (Types.Const 15) in
  Graph.connect b (fork, 0) (caddr, 0);
  Graph.connect b (caddr, 0) (st, 0);
  Graph.connect b (fork, 1) (st, 1);
  let mem = mem4 () in
  Array.iteri (fun i _ -> mem.(i) <- (i * 7) mod 13) mem;
  let expect = mem.(n - 1) in
  let outcome, _ = Sim.run (Graph.finalize b) (Memif.direct ~latency:2 mem) in
  ignore (cycles_of outcome);
  Alcotest.(check int) "last loaded value stored" expect mem.(15)

(* the deadlock detector fires on a stuck circuit *)
let test_deadlock_detection () =
  let b = Graph.create () in
  let gen = Graph.add b (counter_gen 10) in
  (* a join whose second operand never arrives *)
  let join = Graph.add b (Types.Join 2) in
  Graph.connect b (gen, 0) (join, 0);
  let gen2 =
    Graph.add b
      (Types.Gen
         {
           Types.gen_arity = 1;
           gen_next = (fun _ -> [||]);  (* never emits *)
           gen_group = (fun _ -> 0);
         })
  in
  Graph.connect b (gen2, 0) (join, 1);
  let sink = Graph.add b Types.Sink in
  Graph.connect b (join, 0) (sink, 0);
  let cfg = { Sim.default_config with Sim.stall_limit = 64 } in
  let outcome, _, _ = run_graph ~cfg (Graph.finalize b) in
  match outcome with
  | Sim.Deadlock _ -> ()
  | o -> Alcotest.failf "expected deadlock, got %a" Sim.pp_outcome o

(* merge forwards whichever input is ready *)
let test_merge () =
  let n = 20 in
  let b = Graph.create () in
  let gen = Graph.add b (counter_gen n) in
  let merge = Graph.add b (Types.Merge 2) in
  Graph.connect b (gen, 0) (merge, 0);
  let gen2 =
    Graph.add b
      (Types.Gen
         {
           Types.gen_arity = 1;
           gen_next = (fun _ -> [||]);
           gen_group = (fun _ -> 0);
         })
  in
  Graph.connect b (gen2, 0) (merge, 1);
  let sink = Graph.add b Types.Sink in
  Graph.connect b (merge, 0) (sink, 0);
  let outcome, stats, _ = run_graph (Graph.finalize b) in
  ignore (cycles_of outcome);
  Alcotest.(check int) "merge fired n times" n stats.Sim.node_fires.(1)

(* --- property tests ------------------------------------------------------- *)

(* an opaque buffer of any size is a FIFO: outputs appear in push order *)
let prop_buffer_fifo =
  QCheck.Test.make ~count:50 ~name:"buffer preserves order and count"
    QCheck.(pair (int_range 1 8) (int_range 1 64))
    (fun (slots, n) ->
      let b = Graph.create () in
      let gen = Graph.add b (counter_gen n) in
      let buf = Graph.add b (Types.Buffer { transparent = false; slots }) in
      Graph.connect b (gen, 0) (buf, 0);
      let st = Graph.add b (Types.Store { port = 0 }) in
      let fork = Graph.add b (Types.Fork 2) in
      Graph.connect b (buf, 0) (fork, 0);
      let caddr = Graph.add b (Types.Const 2) in
      Graph.connect b (fork, 0) (caddr, 0);
      Graph.connect b (caddr, 0) (st, 0);
      Graph.connect b (fork, 1) (st, 1);
      let mem = mem4 () in
      let outcome, stats = Sim.run (Graph.finalize b) (Memif.direct ~latency:1 mem) in
      (match outcome with Sim.Finished _ -> () | _ -> QCheck.Test.fail_report "not finished");
      ignore stats;
      (* last value out equals last value in: order preserved end-to-end *)
      mem.(2) = n - 1)

(* chains of arbitrary unops terminate with every token delivered *)
let prop_chain_total =
  QCheck.Test.make ~count:50 ~name:"unop chains deliver every token"
    QCheck.(pair (int_range 0 12) (int_range 1 80))
    (fun (depth, n) ->
      let b = Graph.create () in
      let gen = Graph.add b (counter_gen n) in
      let rec chain src k =
        if k = 0 then src
        else begin
          let u = Graph.add b (Types.Unop Types.Neg) in
          Graph.connect b src (u, 0);
          chain (u, 0) (k - 1)
        end
      in
      let last = chain (gen, 0) depth in
      let sink = Graph.add b Types.Sink in
      Graph.connect b last (sink, 0);
      let outcome, stats = Sim.run (Graph.finalize b) (Memif.direct ~latency:1 (mem4 ())) in
      (match outcome with Sim.Finished _ -> true | _ -> false)
      && stats.Sim.node_fires.(sink) = n
      && stats.Sim.gen_instances = n)

(* --- packed token representation ----------------------------------------- *)

(* boundary round-trips: every corner of both bitfields *)
let test_token_roundtrip_bounds () =
  List.iter
    (fun seq ->
      List.iter
        (fun epoch ->
          let k = Types.Token.make ~seq ~epoch in
          Alcotest.(check int)
            (Printf.sprintf "seq of (%d,%d)" seq epoch)
            seq (Types.Token.seq k);
          Alcotest.(check int)
            (Printf.sprintf "epoch of (%d,%d)" seq epoch)
            epoch (Types.Token.epoch k);
          Alcotest.(check bool) "present" true (k >= 0))
        [ 0; 1; Types.Token.max_epoch - 1; Types.Token.max_epoch ])
    [ 0; 1; Types.Token.max_seq - 1; Types.Token.max_seq ]

let test_token_overflow_guard () =
  let must_raise name f =
    match f () with
    | (_ : Types.Token.t) -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument _ -> ()
  in
  must_raise "seq -1" (fun () -> Types.Token.make ~seq:(-1) ~epoch:0);
  must_raise "seq max+1" (fun () ->
      Types.Token.make ~seq:(Types.Token.max_seq + 1) ~epoch:0);
  must_raise "epoch -1" (fun () -> Types.Token.make ~seq:0 ~epoch:(-1));
  must_raise "epoch max+1" (fun () ->
      Types.Token.make ~seq:0 ~epoch:(Types.Token.max_epoch + 1));
  (* the hot-path packer never raises: the epoch wraps modulo 2^20 *)
  Alcotest.(check int)
    "unsafe wraps epoch" 1
    (Types.Token.epoch
       (Types.Token.unsafe ~seq:3 ~epoch:(Types.Token.max_epoch + 2)));
  Alcotest.(check int) "unsafe keeps seq" 3
    (Types.Token.seq
       (Types.Token.unsafe ~seq:3 ~epoch:(Types.Token.max_epoch + 2)))

let test_token_order_and_cutoff () =
  (* key order is lexicographic (seq, epoch), and [first] is the squash
     cutoff: k >= first ~seq:s iff seq k >= s *)
  let k_lo = Types.Token.make ~seq:4 ~epoch:9 in
  let k_hi = Types.Token.make ~seq:5 ~epoch:0 in
  Alcotest.(check bool) "seq dominates epoch" true (k_lo < k_hi);
  Alcotest.(check bool) "cutoff below" true
    (k_lo < Types.Token.first ~seq:5);
  Alcotest.(check bool) "cutoff at" true (k_hi >= Types.Token.first ~seq:5);
  Alcotest.(check int) "with_epoch restamps" 7
    (Types.Token.epoch (Types.Token.with_epoch k_lo ~epoch:7));
  Alcotest.(check int) "with_epoch keeps seq" 4
    (Types.Token.seq (Types.Token.with_epoch k_lo ~epoch:7));
  Alcotest.(check bool) "none is absent" true (Types.Token.none < 0)

let test_token_pp () =
  (* the packed pair still pretty-prints its decoded fields *)
  let tk = Types.token ~epoch:2 ~seq:7 41 in
  Alcotest.(check string)
    "pp_token decodes the packed key" "{seq=7;ep=2;v=41}"
    (Format.asprintf "%a" Types.pp_token tk);
  Alcotest.(check int) "value accessor" 41 (Types.Token.value tk);
  Alcotest.(check int) "with_value" 6
    (Types.Token.value (Types.Token.with_value tk 6))

let prop_token_roundtrip =
  QCheck.Test.make ~count:1000 ~name:"token pack/unpack round-trips"
    QCheck.(
      pair (int_range 0 Pv_dataflow.Types.Token.max_seq)
        (int_range 0 Pv_dataflow.Types.Token.max_epoch))
    (fun (seq, epoch) ->
      let k = Types.Token.make ~seq ~epoch in
      Types.Token.seq k = seq
      && Types.Token.epoch k = epoch
      && k = Types.Token.unsafe ~seq ~epoch
      && Types.Token.with_epoch k ~epoch = k
      && k >= Types.Token.first ~seq
      && (seq = Types.Token.max_seq || k < Types.Token.first ~seq:(seq + 1)))

let () =
  Alcotest.run "pv_dataflow"
    [
      ( "graph",
        [
          Alcotest.test_case "connect errors" `Quick test_connect_errors;
          Alcotest.test_case "unwired detection" `Quick test_check_unwired;
          Alcotest.test_case "cycle detection" `Quick test_check_cycle;
        ] );
      ( "sim",
        [
          Alcotest.test_case "chain II=1" `Quick test_chain_ii1;
          Alcotest.test_case "diamond II=1" `Quick test_diamond_ii1;
          Alcotest.test_case "diamond values" `Quick test_diamond_values;
          Alcotest.test_case "branch routing" `Quick test_branch_routing;
          Alcotest.test_case "pipelined op" `Quick test_pipelined_op;
          Alcotest.test_case "load port" `Quick test_load_port;
          Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
          Alcotest.test_case "merge" `Quick test_merge;
        ] );
      ( "token",
        [
          Alcotest.test_case "round-trip at field bounds" `Quick
            test_token_roundtrip_bounds;
          Alcotest.test_case "overflow guard" `Quick test_token_overflow_guard;
          Alcotest.test_case "key order and squash cutoff" `Quick
            test_token_order_and_cutoff;
          Alcotest.test_case "pretty-printing" `Quick test_token_pp;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_buffer_fifo;
          QCheck_alcotest.to_alcotest prop_chain_total;
          QCheck_alcotest.to_alcotest prop_token_roundtrip;
        ] );
    ]
