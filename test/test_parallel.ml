(* The Domain-parallel experiment runner and result cache (DESIGN.md §14).

   The load-bearing properties:
   - Parallel.map is order-preserving and exception-transparent, and with
     jobs <= 1 is exactly the serial reference.
   - The same experiment grid computed on 1 worker and on N genuinely
     concurrent workers (a forced pool, deliberately oversubscribing a
     small machine) is identical point for point — the assertion behind
     the shared-mutable-state audit: every job compiles, simulates and
     elaborates from private state.
   - A cache hit returns a result identical to the cold computation
     (qcheck property over generated kernels), in memory and across
     cache instances sharing a directory (the cross-process case). *)

open Pv_core

exception Boom of int

let test_map_matches_serial () =
  let xs = List.init 100 (fun i -> i) in
  let f x = (x * x) + 1 in
  Alcotest.(check (list int)) "jobs=4" (List.map f xs) (Parallel.map ~jobs:4 f xs);
  Alcotest.(check (list int)) "jobs=1" (List.map f xs) (Parallel.map ~jobs:1 f xs);
  Alcotest.(check (list int)) "empty" [] (Parallel.map ~jobs:4 f [])

let test_map_order_under_skew () =
  (* earlier elements do the most work, so a racy implementation would
     return them last *)
  let xs = List.init 32 (fun i -> i) in
  let f i =
    let spin = (32 - i) * 10_000 in
    let acc = ref 0 in
    for k = 1 to spin do
      acc := !acc + k
    done;
    (i, !acc)
  in
  let pool = Parallel.create ~jobs:4 in
  Fun.protect
    ~finally:(fun () -> Parallel.shutdown pool)
    (fun () ->
      Alcotest.(check (list (pair int int)))
        "order preserved" (List.map f xs)
        (Parallel.map_pool pool f xs))

let test_map_exception () =
  let f x = if x = 7 then raise (Boom x) else x in
  Alcotest.check_raises "raises Boom 7" (Boom 7) (fun () ->
      ignore (Parallel.map ~jobs:4 f (List.init 20 Fun.id)));
  (* smallest failing index wins when several jobs raise *)
  let g x = if x >= 5 then raise (Boom x) else x in
  Alcotest.check_raises "raises Boom 5" (Boom 5) (fun () ->
      ignore (Parallel.map ~jobs:4 g (List.init 20 Fun.id)))

let test_pool_drains_queue () =
  let pool = Parallel.create ~jobs:3 in
  let lock = Mutex.create () in
  let count = ref 0 in
  for _ = 1 to 500 do
    Parallel.submit pool (fun () ->
        Mutex.lock lock;
        incr count;
        Mutex.unlock lock)
  done;
  Parallel.shutdown pool;
  Alcotest.(check int) "all jobs ran" 500 !count;
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Parallel.submit: pool is shut down") (fun () ->
      Parallel.submit pool (fun () -> ()))

(* ------------------------------------------------------------------ *)
(* Result cache                                                        *)
(* ------------------------------------------------------------------ *)

let test_cache_memo_in_memory () =
  let cache = Parallel.Cache.in_memory () in
  let calls = ref 0 in
  let compute () =
    incr calls;
    ([ 1; 2; 3 ], "payload")
  in
  let v1, s1 = Parallel.Cache.memo cache ~key:"k" compute in
  let v2, s2 = Parallel.Cache.memo cache ~key:"k" compute in
  Alcotest.(check bool) "first is miss" true (s1 = `Miss);
  Alcotest.(check bool) "second is hit" true (s2 = `Hit);
  Alcotest.(check bool) "same value" true (v1 = v2);
  Alcotest.(check int) "computed once" 1 !calls;
  Alcotest.(check int) "hits" 1 (Parallel.Cache.hits cache);
  Alcotest.(check int) "misses" 1 (Parallel.Cache.misses cache)

let test_cache_shared_directory () =
  let dir = Filename.temp_dir "prevv_cache_test" "" in
  let a = Parallel.Cache.on_disk ~dir () in
  let v1, s1 = Parallel.Cache.memo a ~key:"point" (fun () -> (42, [| 1; 2 |])) in
  (* a fresh instance over the same directory models a second process *)
  let b = Parallel.Cache.on_disk ~dir () in
  let v2, s2 =
    Parallel.Cache.memo b ~key:"point" (fun () ->
        Alcotest.fail "hit expected, compute ran")
  in
  Alcotest.(check bool) "cold miss" true (s1 = `Miss);
  Alcotest.(check bool) "cross-instance hit" true (s2 = `Hit);
  Alcotest.(check bool) "same value" true (v1 = v2);
  (* a corrupt entry decodes as a miss, not a crash *)
  let oc = open_out_bin (Filename.concat dir "broken.bin") in
  output_string oc "not a marshalled value";
  close_out oc;
  let v3, s3 = Parallel.Cache.memo b ~key:"broken" (fun () -> 7) in
  Alcotest.(check bool) "corrupt entry is a miss" true (s3 = `Miss);
  Alcotest.(check int) "recomputed" 7 v3

(* ------------------------------------------------------------------ *)
(* The experiment grid: 1 worker vs N genuinely concurrent workers     *)
(* ------------------------------------------------------------------ *)

let grid_cells () =
  List.concat_map
    (fun k -> List.map (fun d -> (k, d)) (Experiment.paper_configs ()))
    (Pv_kernels.Defs.paper_benchmarks ())

let test_grid_serial_vs_concurrent () =
  let cells = grid_cells () in
  let serial = List.map (fun (k, d) -> Experiment.run k d) cells in
  (* a forced 4-worker pool: genuinely concurrent even on one core, so
     any shared mutable state in compile/simulate/elaborate would race *)
  let pool = Parallel.create ~jobs:4 in
  let concurrent =
    Fun.protect
      ~finally:(fun () -> Parallel.shutdown pool)
      (fun () ->
        Parallel.map_pool pool (fun (k, d) -> Experiment.run k d) cells)
  in
  List.iter2
    (fun (a : Experiment.point) (b : Experiment.point) ->
      if a <> b then
        Alcotest.failf "grid point %s/%s differs between 1 and 4 workers"
          a.Experiment.kernel a.Experiment.config)
    serial concurrent;
  (* the JSON rendering (the bench/CLI byte-identity surface) agrees too *)
  Alcotest.(check (list string))
    "rendered points byte-identical"
    (List.map Experiment.point_to_json serial)
    (List.map Experiment.point_to_json concurrent)

let test_same_cell_concurrently () =
  (* many copies of one cell racing through one pool: catches hidden
     shared state that the disjoint-cells grid test would miss *)
  let kernel = Pv_kernels.Defs.gaussian () in
  let reference = Experiment.run kernel (Pipeline.prevv 16) in
  let pool = Parallel.create ~jobs:4 in
  let copies =
    Fun.protect
      ~finally:(fun () -> Parallel.shutdown pool)
      (fun () ->
        Parallel.map_pool pool
          (fun () -> Experiment.run kernel (Pipeline.prevv 16))
          (List.init 8 (fun _ -> ())))
  in
  List.iteri
    (fun i p ->
      if p <> reference then Alcotest.failf "concurrent copy %d diverged" i)
    copies

let test_paper_grid_jobs_param () =
  (* the public driver: whatever the requested job count, same rows *)
  let a = Experiment.paper_grid () in
  let b = Experiment.paper_grid ~jobs:4 () in
  Alcotest.(check bool) "paper_grid jobs-invariant" true (a = b)

(* ------------------------------------------------------------------ *)
(* qcheck: a cache hit equals the cold computation                     *)
(* ------------------------------------------------------------------ *)

let prop_cache_hit_equals_cold =
  QCheck2.Test.make ~name:"cache hit = cold computation" ~count:8
    ~print:string_of_int
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let kernel = Pv_kernels.Generate.kernel seed in
      let init = Pv_kernels.Generate.init_for kernel seed in
      let dis = Pipeline.fast_lsq in
      let cache = Parallel.Cache.in_memory () in
      let cold, s1 = Experiment.run_cached ~init ~cache kernel dis in
      let hit, s2 = Experiment.run_cached ~init ~cache kernel dis in
      s1 = `Miss && s2 = `Hit && cold = hit
      (* and the key separates configurations: a different scheme never
         aliases the stored point *)
      && Experiment.cache_key ~init kernel dis
         <> Experiment.cache_key ~init kernel (Pipeline.prevv 16))

let () =
  Alcotest.run "parallel"
    [
      ( "map",
        [
          Alcotest.test_case "matches serial map" `Quick test_map_matches_serial;
          Alcotest.test_case "order under skewed work" `Quick
            test_map_order_under_skew;
          Alcotest.test_case "exception transparency" `Quick test_map_exception;
          Alcotest.test_case "pool drains queue" `Quick test_pool_drains_queue;
        ] );
      ( "cache",
        [
          Alcotest.test_case "memo in memory" `Quick test_cache_memo_in_memory;
          Alcotest.test_case "shared directory" `Quick test_cache_shared_directory;
          QCheck_alcotest.to_alcotest prop_cache_hit_equals_cold;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "grid: 1 vs 4 workers" `Quick
            test_grid_serial_vs_concurrent;
          Alcotest.test_case "same cell raced 8x" `Quick
            test_same_cell_concurrently;
          Alcotest.test_case "paper_grid jobs param" `Quick
            test_paper_grid_jobs_param;
        ] );
    ]
