(* Tests for memory layout and the port map. *)

open Pv_memory
open Pv_kernels

let test_layout_bases () =
  let k = Defs.polyn_mult ~n:4 () in
  let l = Layout.of_kernel k in
  Alcotest.(check int) "a base" 0 (Layout.base l "a");
  Alcotest.(check int) "b base" 4 (Layout.base l "b");
  Alcotest.(check int) "c base" 8 (Layout.base l "c");
  Alcotest.(check int) "total" 15 l.Layout.total;
  Alcotest.check_raises "unknown array"
    (Invalid_argument "layout: unknown array \"z\"") (fun () ->
      ignore (Layout.base l "z"))

let test_initial_memory_and_extract () =
  let k = Defs.polyn_mult ~n:4 () in
  let l = Layout.of_kernel k in
  let init = [ ("a", [| 1; 2; 3; 4 |]); ("b", [| 5; 6; 7; 8 |]) ] in
  let mem = Layout.initial_memory l k ~init in
  Alcotest.(check (array int)) "a region" [| 1; 2; 3; 4 |] (Layout.extract l k mem "a");
  Alcotest.(check (array int)) "b region" [| 5; 6; 7; 8 |] (Layout.extract l k mem "b");
  Alcotest.(check (array int)) "c zeroed" (Array.make 7 0) (Layout.extract l k mem "c")

let test_initial_memory_length_check () =
  let k = Defs.polyn_mult ~n:4 () in
  let l = Layout.of_kernel k in
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "initial_memory: a length 2, expected 4") (fun () ->
      ignore (Layout.initial_memory l k ~init:[ ("a", [| 1; 2 |]) ]))

let test_diff_against () =
  let k = Defs.polyn_mult ~n:4 () in
  let l = Layout.of_kernel k in
  let init = Workload.default_init k in
  let golden = Interp.run k ~init in
  (* a memory computed by the interpreter itself must diff clean *)
  let mem = Layout.initial_memory l k ~init in
  Array.blit (Hashtbl.find golden "c") 0 mem (Layout.base l "c") 7;
  Array.blit (Hashtbl.find golden "a") 0 mem (Layout.base l "a") 4;
  Array.blit (Hashtbl.find golden "b") 0 mem (Layout.base l "b") 4;
  Alcotest.(check int) "no diffs" 0 (List.length (Layout.diff_against l k mem golden));
  (* corrupt one word *)
  mem.(Layout.base l "c" + 3) <- mem.(Layout.base l "c" + 3) + 1;
  match Layout.diff_against l k mem golden with
  | [ ("c", 3, _, _) ] -> ()
  | d -> Alcotest.failf "expected one diff in c[3], got %d" (List.length d)

(* --- port map -------------------------------------------------------------- *)

let analyse name = (Pv_frontend.Depend.analyse (Defs.by_name name)).Pv_frontend.Depend.portmap

let test_group_ports_program_order () =
  (* gaussian: ports of its single group must come back in id order *)
  let pm = analyse "gaussian" in
  let ports = Portmap.group_ports pm 0 in
  Alcotest.(check (list int)) "sorted by id" (List.sort compare ports) ports;
  Alcotest.(check int) "all five ambiguous ops" 5 (List.length ports)

let test_ambiguity_classification () =
  let pm = analyse "polyn_mult" in
  (* a and b are load-only -> direct; c is accumulated -> ambiguous *)
  Array.iter
    (fun p ->
      let expected_instance = p.Portmap.array = "c" in
      Alcotest.(check bool)
        (Printf.sprintf "port %d (%s)" p.Portmap.id p.Portmap.array)
        expected_instance
        (p.Portmap.instance <> None))
    pm.Portmap.ports

let test_rom_positions () =
  let pm = analyse "polyn_mult" in
  (* instance 0 = c: the load precedes the store in the ROM *)
  let c_ports =
    Array.to_list pm.Portmap.ports
    |> List.filter (fun p -> p.Portmap.instance = Some 0)
  in
  match c_ports with
  | [ load; store ] ->
      Alcotest.(check bool) "load kind" true (load.Portmap.kind = Portmap.OLoad);
      Alcotest.(check bool) "store kind" true (store.Portmap.kind = Portmap.OStore);
      let pos p =
        match Portmap.rom_pos pm ~inst:0 ~group:0 ~port:p.Portmap.id with
        | Some x -> x
        | None -> Alcotest.fail "missing rom position"
      in
      Alcotest.(check bool) "load before store" true (pos load < pos store)
  | l -> Alcotest.failf "expected 2 c-ports, got %d" (List.length l)

let test_conditional_flag () =
  let pm = analyse "cond_update" in
  let conditional_stores =
    Array.to_list pm.Portmap.ports
    |> List.filter (fun p -> p.Portmap.conditional && p.Portmap.kind = Portmap.OStore)
  in
  Alcotest.(check int) "one conditional store" 1 (List.length conditional_stores)

let test_direct_backend_latency () =
  let mem = Array.make 4 7 in
  let b = Pv_dataflow.Memif.direct ~latency:3 mem in
  Alcotest.(check bool) "accepts" true
    (b.Pv_dataflow.Memif.load_req ~port:0
       ~key:(Pv_dataflow.Types.Token.make ~seq:0 ~epoch:0)
       ~addr:2);
  Alcotest.(check bool) "no early response" true (Pv_dataflow.Memif.poll b ~port:0 = None);
  b.Pv_dataflow.Memif.clock ();
  b.Pv_dataflow.Memif.clock ();
  Alcotest.(check bool) "still pending" true (Pv_dataflow.Memif.poll b ~port:0 = None);
  b.Pv_dataflow.Memif.clock ();
  (match Pv_dataflow.Memif.poll b ~port:0 with
  | Some (0, 7) -> ()
  | _ -> Alcotest.fail "expected (0,7) after 3 cycles");
  Alcotest.(check bool) "quiesced" true (b.Pv_dataflow.Memif.quiesced ())

let () =
  Alcotest.run "pv_memory"
    [
      ( "layout",
        [
          Alcotest.test_case "bases" `Quick test_layout_bases;
          Alcotest.test_case "initial memory + extract" `Quick
            test_initial_memory_and_extract;
          Alcotest.test_case "length check" `Quick test_initial_memory_length_check;
          Alcotest.test_case "diff" `Quick test_diff_against;
        ] );
      ( "portmap",
        [
          Alcotest.test_case "group ports in program order" `Quick
            test_group_ports_program_order;
          Alcotest.test_case "ambiguity classification" `Quick
            test_ambiguity_classification;
          Alcotest.test_case "ROM positions" `Quick test_rom_positions;
          Alcotest.test_case "conditional flag" `Quick test_conditional_flag;
        ] );
      ( "direct backend",
        [ Alcotest.test_case "latency" `Quick test_direct_backend_latency ] );
    ]
