(* Robustness of the content-addressed result cache (Parallel.Cache):
   framed disk entries, sharded layout, miss-and-repair on every corrupt
   state, stale-temp sweeping, eviction accounting, and the advisory-lock
   + atomic-rename publish protocol under 8 concurrent writer
   processes. *)

open Pv_core
module Cache = Parallel.Cache

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "prevv_cache_test_%d_%d" (Unix.getpid ()) !n)
    in
    Unix.mkdir d 0o700;
    d

let rec rm_rf p =
  if Sys.is_directory p then begin
    Array.iter (fun f -> rm_rf (Filename.concat p f)) (Sys.readdir p);
    Unix.rmdir p
  end
  else Sys.remove p

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> try rm_rf dir with _ -> ()) (fun () -> f dir)

let value_of key = "payload:" ^ key ^ ":" ^ String.make 64 'x'
let compute key () = value_of key
let entry_path dir key = Filename.concat (Filename.concat dir (String.sub key 0 2)) (key ^ ".bin")

(* ------------------------------------------------------------------ *)
(* Layout                                                              *)
(* ------------------------------------------------------------------ *)

let test_sharded_layout () =
  with_dir (fun dir ->
      let c = Cache.on_disk ~dir () in
      let v, flag = Cache.memo c ~key:"deadbeef" (compute "deadbeef") in
      Alcotest.(check string) "computed" (value_of "deadbeef") v;
      Alcotest.(check bool) "first is a miss" true (flag = `Miss);
      Alcotest.(check bool)
        "entry lands at dir/<key[0..1]>/<key>.bin" true
        (Sys.file_exists (entry_path dir "deadbeef"));
      (* a second process (fresh instance, cold memory) hits from disk *)
      let c2 = Cache.on_disk ~dir () in
      let v2, flag2 = Cache.memo c2 ~key:"deadbeef" (fun () -> "WRONG") in
      Alcotest.(check string) "disk hit returns stored value" (value_of "deadbeef") v2;
      Alcotest.(check bool) "disk hit" true (flag2 = `Hit);
      Alcotest.(check int) "hit counted" 1 (Cache.hits c2))

(* ------------------------------------------------------------------ *)
(* Corruption = miss and repair                                        *)
(* ------------------------------------------------------------------ *)

let corrupt_then_recover ~name corrupt =
  with_dir (fun dir ->
      let key = "abcdef01" in
      let c = Cache.on_disk ~dir () in
      ignore (Cache.memo c ~key (compute key));
      corrupt (entry_path dir key);
      (* a fresh instance (cold memory) must treat the damaged entry as a
         miss, recompute, count a repair, and rewrite the entry *)
      let c2 = Cache.on_disk ~dir () in
      let v, flag = Cache.memo c2 ~key (compute key) in
      Alcotest.(check string) (name ^ ": recomputed value") (value_of key) v;
      Alcotest.(check bool) (name ^ ": corrupt entry is a miss") true (flag = `Miss);
      Alcotest.(check bool) (name ^ ": repair counted") true (Cache.repairs c2 >= 1);
      (* repaired on disk: a third cold instance hits cleanly *)
      let c3 = Cache.on_disk ~dir () in
      let v3, flag3 = Cache.memo c3 ~key (fun () -> "WRONG") in
      Alcotest.(check string) (name ^ ": entry rewritten") (value_of key) v3;
      Alcotest.(check bool) (name ^ ": subsequent hit") true (flag3 = `Hit);
      Alcotest.(check int) (name ^ ": no repair on clean entry") 0
        (Cache.repairs c3))

let test_truncated_entry () =
  corrupt_then_recover ~name:"truncated" (fun p -> Unix.truncate p 5)

let test_garbage_entry () =
  corrupt_then_recover ~name:"garbage" (fun p ->
      let oc = open_out_bin p in
      output_string oc (String.make 200 '\xCF');
      close_out oc)

let test_wrong_digest_entry () =
  (* right magic, torn payload: the frame digest must reject it *)
  corrupt_then_recover ~name:"bad digest" (fun p ->
      let ic = open_in_bin p in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let b = Bytes.of_string s in
      Bytes.set b (Bytes.length b - 1) '\000';
      let oc = open_out_bin p in
      output_bytes oc b;
      close_out oc)

let test_random_garbage_never_raises () =
  (* whatever bytes sit at the entry path, memo must return the computed
     value and never raise *)
  with_dir (fun dir ->
      let st = Random.State.make [| 0x5EED |] in
      for i = 0 to 19 do
        let key = Printf.sprintf "fuzz%04d" i in
        let p = entry_path dir key in
        let shard = Filename.dirname p in
        (try Unix.mkdir shard 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        let len = Random.State.int st 300 in
        let oc = open_out_bin p in
        for _ = 1 to len do
          output_char oc (Char.chr (Random.State.int st 256))
        done;
        close_out oc;
        let c = Cache.on_disk ~dir () in
        let v, _ = Cache.memo c ~key (compute key) in
        Alcotest.(check string)
          (Printf.sprintf "fuzz entry %d recovered" i)
          (value_of key) v
      done)

(* ------------------------------------------------------------------ *)
(* Crashed-writer temp files                                           *)
(* ------------------------------------------------------------------ *)

let test_stale_tmp_sweep () =
  with_dir (fun dir ->
      let shard = Filename.concat dir "ab" in
      Unix.mkdir shard 0o700;
      let plant name age_s =
        let p = Filename.concat shard name in
        let oc = open_out_bin p in
        output_string oc "half-written";
        close_out oc;
        let t = Unix.gettimeofday () -. age_s in
        Unix.utimes p t t;
        p
      in
      (* a crashed writer's hour-old leftover, and a racing writer's
         fresh staging file *)
      let stale = plant "abcd1234.bin.tmp.999.0" 3600.0 in
      let live = plant "abcd9999.bin.tmp.888.1" 0.0 in
      ignore (Cache.on_disk ~dir ());
      Alcotest.(check bool) "stale tmp swept" false (Sys.file_exists stale);
      Alcotest.(check bool) "fresh tmp kept" true (Sys.file_exists live);
      (* the leftover never shadows the real entry *)
      let c = Cache.on_disk ~dir () in
      let v, flag = Cache.memo c ~key:"abcd1234" (compute "abcd1234") in
      Alcotest.(check string) "value recomputed" (value_of "abcd1234") v;
      Alcotest.(check bool) "tmp is not an entry" true (flag = `Miss))

(* ------------------------------------------------------------------ *)
(* Concurrent multi-process writers                                    *)
(* ------------------------------------------------------------------ *)

let test_concurrent_writers () =
  (* 8 processes hammer the same 24 keys through their own cache
     instances.  The publish protocol must leave every entry whole:
     every process reads back exactly the deterministic value, and the
     survivors on disk all pass the frame check. *)
  with_dir (fun dir ->
      let n_procs = 8 and n_keys = 24 and n_rounds = 5 in
      let keys = List.init n_keys (Printf.sprintf "cc%06x") in
      let child () =
        let ok = ref true in
        (try
           for _ = 1 to n_rounds do
             let c = Cache.on_disk ~dir () in
             List.iter
               (fun key ->
                 let v, _ = Cache.memo c ~key (compute key) in
                 if v <> value_of key then ok := false)
               keys
           done
         with _ -> ok := false);
        (* _exit: never run the parent's at_exit/Alcotest machinery *)
        Unix._exit (if !ok then 0 else 1)
      in
      let pids =
        List.init n_procs (fun _ ->
            match Unix.fork () with 0 -> child () | pid -> pid)
      in
      List.iter
        (fun pid ->
          match Unix.waitpid [] pid with
          | _, Unix.WEXITED 0 -> ()
          | _, Unix.WEXITED c ->
              Alcotest.failf "writer process saw a torn value (exit %d)" c
          | _, (Unix.WSIGNALED s | Unix.WSTOPPED s) ->
              Alcotest.failf "writer process died with signal %d" s)
        pids;
      (* no torn survivors: a cold instance hits every key from disk *)
      let c = Cache.on_disk ~dir () in
      List.iter
        (fun key ->
          let v, flag = Cache.memo c ~key (fun () -> "WRONG") in
          Alcotest.(check string) ("final value of " ^ key) (value_of key) v;
          Alcotest.(check bool) ("final " ^ key ^ " on disk") true (flag = `Hit))
        keys;
      Alcotest.(check int) "no repairs needed afterwards" 0 (Cache.repairs c))

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

let test_eviction_counter () =
  let c = Cache.in_memory ~max_mem:4 () in
  List.iter
    (fun i ->
      let key = Printf.sprintf "k%02d" i in
      ignore (Cache.memo c ~key (compute key)))
    (List.init 10 Fun.id);
  Alcotest.(check int) "misses" 10 (Cache.misses c);
  Alcotest.(check int) "evictions beyond the cap" 6 (Cache.evictions c);
  (* an evicted key recomputes (memory-only cache: nothing on disk) *)
  let _, flag = Cache.memo c ~key:"k00" (compute "k00") in
  Alcotest.(check bool) "evicted key is a miss" true (flag = `Miss)

let test_metrics_export () =
  with_dir (fun dir ->
      let c = Cache.on_disk ~dir () in
      ignore (Cache.memo c ~key:"aa11" (compute "aa11"));
      ignore (Cache.memo c ~key:"aa11" (compute "aa11"));
      let m = Pv_obs.Metrics.create () in
      Cache.record_metrics c m;
      Alcotest.(check int) "cache.hits" 1 (Pv_obs.Metrics.counter_value m "cache.hits");
      Alcotest.(check int) "cache.misses" 1 (Pv_obs.Metrics.counter_value m "cache.misses");
      Alcotest.(check int) "cache.repairs" 0 (Pv_obs.Metrics.counter_value m "cache.repairs");
      Cache.reset_stats c;
      Alcotest.(check int) "reset" 0 (Cache.hits c))

let () =
  Alcotest.run "cache"
    [
      ("layout", [ Alcotest.test_case "sharded path + disk hit" `Quick test_sharded_layout ]);
      ( "repair",
        [
          Alcotest.test_case "truncated entry" `Quick test_truncated_entry;
          Alcotest.test_case "garbage entry" `Quick test_garbage_entry;
          Alcotest.test_case "bad digest entry" `Quick test_wrong_digest_entry;
          Alcotest.test_case "random garbage never raises" `Quick
            test_random_garbage_never_raises;
        ] );
      ( "crash",
        [ Alcotest.test_case "stale tmp swept, fresh kept" `Quick test_stale_tmp_sweep ] );
      ( "concurrency",
        [ Alcotest.test_case "8 writer processes, no torn reads" `Quick
            test_concurrent_writers ] );
      ( "counters",
        [
          Alcotest.test_case "eviction accounting" `Quick test_eviction_counter;
          Alcotest.test_case "metrics export" `Quick test_metrics_export;
        ] );
    ]
