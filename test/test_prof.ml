(* Attribution invariants of the cycle profiler (DESIGN.md §20).

   The profiler's claim is exactness, not sampling: every unit of
   simulated work lands in one phase bucket, so the buckets obey closed
   identities against independently maintained counters —
   [circuit_sweep] equals the simulator's eval count, [mem_service]
   equals the backend's loads + stores, and the phase totals sum to
   {!Prof.total} on every kernel x backend cell.  On top of that the
   reports must be deterministic across worker counts and the folded
   emitter must round-trip through its own parser with the counts
   conserved. *)

open Pv_core
module Sim = Pv_dataflow.Sim
module Memif = Pv_dataflow.Memif
module Prof = Pv_obs.Prof

let kernels = Pv_kernels.Defs.paper_benchmarks ()

let backends =
  [ ("prevv16", Pipeline.prevv 16); ("fast-lsq", Pipeline.fast_lsq) ]

let profiled_run ?(engine = Sim.Event) kernel dis =
  let compiled = Pipeline.compile kernel in
  let prof = Prof.create () in
  let sim_cfg = { Sim.default_config with Sim.engine } in
  let r = Pipeline.simulate ~sim_cfg ~prof compiled dis in
  (prof, r)

(* every paper kernel x {prevv, fast-lsq}: the closed identities *)
let test_attribution_invariants () =
  List.iter
    (fun kernel ->
      List.iter
        (fun (bname, dis) ->
          let name = kernel.Pv_kernels.Ast.name ^ "/" ^ bname in
          let prof, r = profiled_run kernel dis in
          (match r.Pipeline.outcome with
          | Sim.Finished _ -> ()
          | o ->
              Alcotest.failf "%s: did not finish: %s" name
                (Format.asprintf "%a" Sim.pp_outcome o));
          let phases = Prof.phase_totals prof in
          Alcotest.(check int)
            (name ^ ": phase budget sums to total")
            (Prof.total prof)
            (Array.fold_left ( + ) 0 phases);
          Alcotest.(check int)
            (name ^ ": circuit_sweep = simulator evals")
            r.Pipeline.run_stats.Sim.evals
            phases.(Prof.phase_circuit_sweep);
          let ms = r.Pipeline.mem_stats in
          Alcotest.(check int)
            (name ^ ": mem_service = loads + stores")
            (ms.Memif.loads + ms.Memif.stores)
            phases.(Prof.phase_mem_service);
          (* only the selected backend's phases show up; dispatch on the
             registry name, never the variant (scheme encapsulation) *)
          match bname with
          | "prevv16" ->
              Alcotest.(check int) (name ^ ": no LSQ CAM work") 0
                phases.(Prof.phase_lsq_cam);
              Alcotest.(check bool)
                (name ^ ": PQ validation attributed")
                true
                (phases.(Prof.phase_pq_validate) > 0)
          | "fast-lsq" ->
              Alcotest.(check int) (name ^ ": no arbiter work") 0
                phases.(Prof.phase_arbiter_scan);
              Alcotest.(check int) (name ^ ": no PQ validation") 0
                phases.(Prof.phase_pq_validate);
              Alcotest.(check bool)
                (name ^ ": CAM work attributed")
                true
                (phases.(Prof.phase_lsq_cam) > 0)
          | b -> Alcotest.failf "unexpected backend %s" b)
        backends)
    kernels

let hot_sig prof =
  List.map
    (fun h ->
      (h.Prof.nid, h.Prof.opcode, h.Prof.label, h.Prof.evals,
       Array.to_list h.Prof.stalls))
    (Prof.hot_nodes prof ~top:10)

(* the whole report — hot-node table, folded stacks, phase budget — is
   identical whether the profiled run shares the process with 3 other
   concurrent profiled runs or runs alone: each run owns its profiler *)
let test_deterministic_across_jobs () =
  let kernel = Pv_kernels.Defs.histogram () in
  let dis = Pipeline.prevv 16 in
  let run () =
    let prof, _ = profiled_run kernel dis in
    ( hot_sig prof,
      Prof.folded prof ~kernel:"histogram",
      Array.to_list (Prof.phase_totals prof) )
  in
  let serial = run () in
  let parallel = Parallel.map ~jobs:4 (fun () -> run ()) [ (); (); (); () ] in
  List.iteri
    (fun i r ->
      Alcotest.(check bool)
        (Printf.sprintf "profile %d of jobs=4 equals the serial profile" i)
        true (r = serial))
    parallel

(* folded output is conservative: it parses back, the kernel frame leads
   every stack, and the counts sum to the attributed total *)
let test_folded_roundtrip () =
  List.iter
    (fun kernel ->
      let name = kernel.Pv_kernels.Ast.name in
      let prof, _ = profiled_run kernel (Pipeline.prevv 16) in
      let s = Prof.folded prof ~kernel:name in
      match Prof.parse_folded s with
      | Error e -> Alcotest.failf "%s: folded output did not parse: %s" name e
      | Ok rows ->
          Alcotest.(check bool) (name ^ ": rows non-empty") true (rows <> []);
          Alcotest.(check int)
            (name ^ ": folded counts sum to total")
            (Prof.total prof)
            (List.fold_left (fun acc (_, n) -> acc + n) 0 rows);
          List.iter
            (fun (frames, n) ->
              Alcotest.(check bool) (name ^ ": positive count") true (n > 0);
              match frames with
              | k :: rest when List.length rest = 1 || List.length rest = 2 ->
                  Alcotest.(check string) (name ^ ": kernel frame leads") name k
              | _ ->
                  Alcotest.failf "%s: stack has %d frames" name
                    (List.length frames))
            rows)
    kernels

(* junk folded lines are an [Error], never a crash or a silent zero *)
let test_folded_rejects_junk () =
  List.iter
    (fun s ->
      match Prof.parse_folded s with
      | Ok _ -> Alcotest.failf "accepted ill-formed folded line %S" s
      | Error _ -> ())
    [ "no-count-here"; "k;phase notanumber"; " 5" ]

(* the disabled profiler records nothing through any entry point *)
let test_null_records_nothing () =
  let p = Prof.null in
  Alcotest.(check bool) "disabled" false (Prof.enabled p);
  Prof.node_eval p 3;
  Prof.add p ~phase:Prof.phase_mem_service 7;
  Prof.stall p 3 ~reason:Prof.reason_starved;
  Alcotest.(check int) "total stays zero" 0 (Prof.total p);
  Alcotest.(check bool) "no hot nodes" true (Prof.hot_nodes p ~top:5 = [])

let () =
  Alcotest.run "prof"
    [
      ( "invariants",
        [
          Alcotest.test_case "phase budget identities, 5 kernels x 2 backends"
            `Quick test_attribution_invariants;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs=1 and jobs=4 report identically" `Quick
            test_deterministic_across_jobs;
        ] );
      ( "folded",
        [
          Alcotest.test_case "round-trips through the parser" `Quick
            test_folded_roundtrip;
          Alcotest.test_case "rejects junk" `Quick test_folded_rejects_junk;
        ] );
      ( "null",
        [
          Alcotest.test_case "records nothing" `Quick test_null_records_nothing;
        ] );
    ]
