(* Behavioural tests for the PreVV backend, driving the Memif contract
   directly: premature reads, in-order commit, violation detection and
   squash, fake tokens, admission and the store-arrival frontier. *)

open Pv_memory
module MI = Pv_dataflow.Memif

let tkey s = Pv_dataflow.Types.Token.make ~seq:s ~epoch:0
module Fault = Pv_dataflow.Fault

(* one ambiguous array "x": load port 0, store port 1 in one group *)
let portmap () =
  {
    Portmap.ports =
      [|
        { Portmap.id = 0; kind = Portmap.OLoad; array = "x"; instance = Some 0; conditional = false };
        { Portmap.id = 1; kind = Portmap.OStore; array = "x"; instance = Some 0; conditional = false };
      |];
    n_groups = 1;
    n_instances = 1;
    rom = [| [| [| 0; 1 |] |] |];
  }

(* conditional variant: the store may be skipped *)
let portmap_cond () =
  let pm = portmap () in
  pm.Portmap.ports.(1) <-
    { (pm.Portmap.ports.(1)) with Portmap.conditional = true };
  pm

let cfg depth =
  {
    Pv_prevv.Backend.depth_q = depth;
    mem_latency = 1;
    commits_per_cycle = 2;
    fake_tokens = true;
    value_validation = true;
    collapse_queue = true;
    squash_budget = 8;
  }

let fresh ?(depth = 8) ?(pm = portmap ()) () =
  let mem = Array.make 32 0 in
  Array.iteri (fun i _ -> mem.(i) <- 100 + i) mem;
  let b = Pv_prevv.Backend.create (cfg depth) pm mem in
  (mem, b)

let step (b : MI.t) = b.MI.clock ()

let rec poll_until ?(limit = 20) (b : MI.t) ~port =
  match MI.poll b ~port with
  | Some (key, v) -> (Pv_dataflow.Types.Token.seq key, v)
  | None ->
      if limit = 0 then Alcotest.fail "no response within limit";
      step b;
      poll_until ~limit:(limit - 1) b ~port

let begin_seqs (b : MI.t) n =
  for s = 0 to n - 1 do
    Alcotest.(check bool) "begin accepted" true (b.MI.begin_instance ~seq:s ~group:0)
  done

(* a premature load reads committed memory immediately *)
let test_premature_read () =
  let _, b = fresh () in
  begin_seqs b 1;
  Alcotest.(check bool) "accepted" true (b.MI.load_req ~port:0 ~key:(tkey 0) ~addr:4);
  let seq, v = poll_until b ~port:0 in
  Alcotest.(check (pair int int)) "memory value" (0, 104) (seq, v)

(* stores do not reach memory before their instance commits *)
let test_store_buffered_then_committed () =
  let mem, b = fresh () in
  begin_seqs b 1;
  ignore (b.MI.load_req ~port:0 ~key:(tkey 0) ~addr:4);
  Alcotest.(check bool) "store accepted" true
    (b.MI.store_req ~port:1 ~key:(tkey 0) ~addr:4 ~value:55);
  Alcotest.(check int) "not yet in memory" 104 mem.(4);
  step b;
  Alcotest.(check int) "committed at the frontier" 55 mem.(4);
  ignore (poll_until b ~port:0);
  Alcotest.(check bool) "quiesced" true (b.MI.quiesced ())

(* commits follow program order even when instances complete out of order *)
let test_commit_in_program_order () =
  let mem, b = fresh () in
  begin_seqs b 3;
  (* instance 1 and 2 complete; instance 0's store is still missing *)
  ignore (b.MI.load_req ~port:0 ~key:(tkey 1) ~addr:9);
  ignore (b.MI.store_req ~port:1 ~key:(tkey 1) ~addr:6 ~value:11);
  ignore (b.MI.load_req ~port:0 ~key:(tkey 2) ~addr:9);
  ignore (b.MI.store_req ~port:1 ~key:(tkey 2) ~addr:6 ~value:22);
  step b;
  step b;
  Alcotest.(check int) "blocked behind the frontier" 106 mem.(6);
  ignore (b.MI.load_req ~port:0 ~key:(tkey 0) ~addr:9);
  ignore (b.MI.store_req ~port:1 ~key:(tkey 0) ~addr:6 ~value:0);
  (* one BRAM write port: three commits take three cycles *)
  step b;
  step b;
  step b;
  step b;
  Alcotest.(check int) "all committed in order" 22 mem.(6)

(* scenario (a) of Sec. III: a younger load consumed a stale value and the
   older store's arrival exposes it -> squash at the load's iteration *)
let test_violation_and_squash () =
  let mem, b = fresh () in
  begin_seqs b 2;
  (* the younger load reads address 5 prematurely (value 105) *)
  ignore (b.MI.load_req ~port:0 ~key:(tkey 1) ~addr:5);
  ignore (poll_until b ~port:0);
  (* the older store to the same address arrives with a different value *)
  ignore (b.MI.load_req ~port:0 ~key:(tkey 0) ~addr:2);
  ignore (b.MI.store_req ~port:1 ~key:(tkey 0) ~addr:5 ~value:777);
  (match b.MI.poll_squash () with
  | Some 1 -> ()
  | Some s -> Alcotest.failf "squash at %d, expected 1" s
  | None -> Alcotest.fail "expected a squash");
  (* replay: only instance 1 re-executes; instance 0's records survived
     the squash and its store commits at the frontier *)
  step b;
  Alcotest.(check bool) "replay begin" true (b.MI.begin_instance ~seq:1 ~group:0);
  step b;
  Alcotest.(check int) "store committed during replay window" 777 mem.(5);
  Alcotest.(check bool) "replayed load accepted" true
    (b.MI.load_req ~port:0 ~key:(tkey 1) ~addr:5);
  (* port responses are in request order: instance 0's survives the squash *)
  let s0, v0 = poll_until b ~port:0 in
  Alcotest.(check (pair int int)) "instance 0's response intact" (0, 102) (s0, v0);
  let _, v = poll_until b ~port:0 in
  Alcotest.(check int) "replayed load sees the store" 777 v

(* Eq. 5: matching values mean no squash *)
let test_value_validation_passes () =
  let _, b = fresh () in
  begin_seqs b 2;
  ignore (b.MI.load_req ~port:0 ~key:(tkey 1) ~addr:5);
  ignore (poll_until b ~port:0);
  ignore (b.MI.load_req ~port:0 ~key:(tkey 0) ~addr:2);
  (* the store writes the value the load already observed *)
  ignore (b.MI.store_req ~port:1 ~key:(tkey 0) ~addr:5 ~value:105);
  Alcotest.(check bool) "no squash" true (b.MI.poll_squash () = None)

(* the load gate: an older queued store to the same address stalls the load
   instead of letting it mis-speculate deterministically *)
let test_load_gate_wait () =
  let _, b = fresh () in
  begin_seqs b 2;
  ignore (b.MI.load_req ~port:0 ~key:(tkey 0) ~addr:2);
  ignore (b.MI.store_req ~port:1 ~key:(tkey 0) ~addr:5 ~value:777);
  (* before the commit lands, the younger load to address 5 must wait *)
  Alcotest.(check bool) "gated" false (b.MI.load_req ~port:0 ~key:(tkey 1) ~addr:5);
  step b;
  (* after commit it reads the new value *)
  Alcotest.(check bool) "accepted after commit" true
    (b.MI.load_req ~port:0 ~key:(tkey 1) ~addr:5);
  let s0, v0 = poll_until b ~port:0 in
  Alcotest.(check (pair int int)) "first response" (0, 102) (s0, v0);
  let _, v = poll_until b ~port:0 in
  Alcotest.(check int) "fresh value" 777 v

(* fake tokens: a skipped conditional store lets the frontier advance *)
let test_fake_tokens () =
  let mem, b = fresh ~pm:(portmap_cond ()) () in
  begin_seqs b 2;
  ignore (b.MI.load_req ~port:0 ~key:(tkey 0) ~addr:3);
  Alcotest.(check bool) "fake token accepted" true (b.MI.op_skip ~port:1 ~key:(tkey 0));
  ignore (b.MI.load_req ~port:0 ~key:(tkey 1) ~addr:3);
  ignore (b.MI.store_req ~port:1 ~key:(tkey 1) ~addr:3 ~value:9);
  step b;
  step b;
  Alcotest.(check int) "both instances retired" 9 mem.(3);
  ignore (poll_until b ~port:0);
  ignore (poll_until b ~port:0);
  Alcotest.(check bool) "quiesced" true (b.MI.quiesced ())

(* without fake tokens the frontier wedges *)
let test_no_fake_tokens_wedges () =
  let mem = Array.make 8 0 in
  let b =
    Pv_prevv.Backend.create
      { (cfg 8) with Pv_prevv.Backend.fake_tokens = false }
      (portmap_cond ()) mem
  in
  ignore (b.MI.begin_instance ~seq:0 ~group:0);
  ignore (b.MI.begin_instance ~seq:1 ~group:0);
  ignore (b.MI.load_req ~port:0 ~key:(tkey 0) ~addr:3);
  ignore (b.MI.op_skip ~port:1 ~key:(tkey 0));
  ignore (b.MI.load_req ~port:0 ~key:(tkey 1) ~addr:3);
  ignore (b.MI.store_req ~port:1 ~key:(tkey 1) ~addr:3 ~value:9);
  for _ = 1 to 10 do step b done;
  Alcotest.(check int) "store never commits" 0 mem.(3);
  Alcotest.(check bool) "never quiesces" false (b.MI.quiesced ())

(* admission: the dynamic frontier reserve and the per-port quota bound
   how far one port races ahead of the oldest instance *)
let test_port_quota () =
  let _, b = fresh ~depth:4 () in
  begin_seqs b 8;
  (* the frontier instance (seq 0) still misses 2 ops, so only
     depth - 2 = 2 slots are open to younger records (one BRAM read per
     cycle pair, so space the requests out with clock ticks) *)
  Alcotest.(check bool) "1st" true (b.MI.load_req ~port:0 ~key:(tkey 1) ~addr:1);
  Alcotest.(check bool) "2nd" true (b.MI.load_req ~port:0 ~key:(tkey 2) ~addr:1);
  step b;
  Alcotest.(check bool) "3rd refused (frontier reserve)" false
    (b.MI.load_req ~port:0 ~key:(tkey 3) ~addr:1);
  (* frontier-age operations always get in *)
  Alcotest.(check bool) "frontier load admitted" true
    (b.MI.load_req ~port:0 ~key:(tkey 0) ~addr:1);
  ignore (b.MI.store_req ~port:1 ~key:(tkey 0) ~addr:9 ~value:1);
  step b;
  (* instance 0 committed: its slots freed, the reserve moved to seq 1 *)
  Alcotest.(check bool) "3rd admitted after commit" true
    (b.MI.load_req ~port:0 ~key:(tkey 3) ~addr:1)

(* depth smaller than an instance's ports is rejected at construction *)
let test_depth_guard () =
  let mem = Array.make 8 0 in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Pv_prevv.Backend.create (cfg 1) (portmap ()) mem);
       false
     with Invalid_argument _ -> true)

(* the store-arrival frontier retires load records early: once every older
   store of the same array has arrived and been checked, the load's slot
   frees even though the global commit frontier is stuck on another array *)
let portmap_two_arrays () =
  {
    Portmap.ports =
      [|
        { Portmap.id = 0; kind = Portmap.OLoad; array = "x"; instance = Some 0; conditional = false };
        { Portmap.id = 1; kind = Portmap.OStore; array = "x"; instance = Some 0; conditional = false };
        { Portmap.id = 2; kind = Portmap.OLoad; array = "y"; instance = Some 1; conditional = false };
      |];
    n_groups = 1;
    n_instances = 2;
    rom = [| [| [| 0; 1 |] |]; [| [| 2 |] |] |];
  }

let test_saf_retirement () =
  let _, b = fresh ~depth:8 ~pm:(portmap_two_arrays ()) () in
  begin_seqs b 8;
  (* the y-load of seq 0 never arrives: the commit frontier stays at 0 *)
  for s = 0 to 5 do
    ignore (b.MI.load_req ~port:0 ~key:(tkey s) ~addr:(20 + s))
  done;
  for s = 0 to 5 do
    ignore (b.MI.store_req ~port:1 ~key:(tkey s) ~addr:(10 + s) ~value:s)
  done;
  step b;
  (* stores of 0..5 arrived: x's store-arrival frontier passed seq 5, all
     x-load records validated and retired; the x-port has credits again *)
  Alcotest.(check bool) "load slot freed by validation" true
    (b.MI.load_req ~port:0 ~key:(tkey 6) ~addr:26);
  Alcotest.(check bool) "another" true (b.MI.load_req ~port:0 ~key:(tkey 7) ~addr:27)

(* an undetected SEU flipping a recorded load value is indistinguishable
   from a premature read of stale data — value validation (Eq. 5) catches
   it when the older store arrives and squashes the victim iteration *)
let test_silent_pq_flip_caught () =
  let _, b = fresh () in
  begin_seqs b 2;
  ignore (b.MI.load_req ~port:0 ~key:(tkey 1) ~addr:5);
  ignore (poll_until b ~port:0);
  (* SEU: the queued record's value silently flips (no ECC flag) *)
  Alcotest.(check bool) "flip accepted" true
    (b.MI.inject (Fault.B_pq_flip { inst = 0; slot = 0; mask = 0xff; detect = false }));
  ignore (b.MI.load_req ~port:0 ~key:(tkey 0) ~addr:2);
  (* the store writes exactly what the load originally observed: without
     the SEU this is the no-squash case of test_value_validation_passes *)
  ignore (b.MI.store_req ~port:1 ~key:(tkey 0) ~addr:5 ~value:105);
  match b.MI.poll_squash () with
  | Some 1 -> ()
  | Some s -> Alcotest.failf "squash at %d, expected 1" s
  | None -> Alcotest.fail "corrupted record escaped value validation"

(* a spurious squash below the commit frontier is refused: those iterations
   are architectural state already *)
let test_inject_stale_squash_refused () =
  let _, b = fresh () in
  begin_seqs b 2;
  ignore (b.MI.load_req ~port:0 ~key:(tkey 0) ~addr:4);
  ignore (b.MI.store_req ~port:1 ~key:(tkey 0) ~addr:4 ~value:1);
  step b;
  (* instance 0 committed; the frontier is past it *)
  Alcotest.(check bool) "stale squash refused" false
    (b.MI.inject (Fault.B_squash { seq = 0 }));
  Alcotest.(check bool) "live squash accepted" true
    (b.MI.inject (Fault.B_squash { seq = 1 }));
  Alcotest.(check bool) "and observable" true (b.MI.poll_squash () = Some 1)

(* livelock guard unit: a squash source stuck on one iteration trips the
   budget and the backend degrades to non-speculative admission *)
let test_livelock_guard_unit () =
  let mem = Array.make 32 0 in
  let t, b =
    Pv_prevv.Backend.create_full
      { (cfg 8) with Pv_prevv.Backend.squash_budget = 2 }
      (portmap ()) mem
  in
  begin_seqs b 6;
  Alcotest.(check bool) "not degraded initially" true
    (Pv_prevv.Backend.degraded_at t = None);
  for _ = 1 to 4 do
    Alcotest.(check bool) "squash accepted" true
      (b.MI.inject (Fault.B_squash { seq = 1 }));
    Alcotest.(check bool) "squash observed" true (b.MI.poll_squash () = Some 1);
    step b
  done;
  (* streak 4 > budget 2: guard engaged and recorded *)
  Alcotest.(check bool) "degraded_at set" true
    (Pv_prevv.Backend.degraded_at t <> None);
  Alcotest.(check bool) "stats record the degradation" true
    ((b.MI.stats ()).MI.degraded >= 1);
  (* degraded admission: a load far beyond the store-arrival frontier could
     still be accused by an older store, so it must wait *)
  Alcotest.(check bool) "speculative load refused" false
    (b.MI.load_req ~port:0 ~key:(tkey 4) ~addr:3);
  (* the frontier-age load has no possible accuser and still goes through *)
  Alcotest.(check bool) "frontier load admitted" true
    (b.MI.load_req ~port:0 ~key:(tkey 0) ~addr:3)

(* minimal legal depth (= one body instance): admission backpressures with
   [false] and the run still completes — a full queue must never surface as
   an exception *)
let test_min_depth_backpressure () =
  let mem, b = fresh ~depth:2 () in
  begin_seqs b 4;
  let refused = ref 0 in
  (* issue every op as early as possible, in program order, so younger
     iterations contend with the un-committed frontier for the two slots *)
  let ops = List.concat_map (fun s -> [ `L s; `S s ]) [ 0; 1; 2; 3 ] in
  let remaining = ref ops in
  let cycles = ref 0 in
  while !remaining <> [] do
    incr cycles;
    if !cycles > 100 then Alcotest.fail "no admission within 100 cycles";
    let rec issue = function
      | [] -> []
      | op :: rest ->
          let ok =
            match op with
            | `L s -> b.MI.load_req ~port:0 ~key:(tkey s) ~addr:(8 + s)
            | `S s ->
                b.MI.store_req ~port:1 ~key:(tkey s) ~addr:(8 + s) ~value:(50 + s)
          in
          if ok then issue rest
          else begin
            incr refused;
            op :: rest
          end
    in
    remaining := issue !remaining;
    step b
  done;
  for _ = 0 to 3 do ignore (poll_until b ~port:0) done;
  for _ = 1 to 8 do step b done;
  Alcotest.(check bool) "tight queue did backpressure" true (!refused > 0);
  Alcotest.(check bool) "refusals counted as stall_full" true
    ((b.MI.stats ()).MI.stall_full > 0);
  Alcotest.(check (list int)) "all stores committed" [ 50; 51; 52; 53 ]
    [ mem.(8); mem.(9); mem.(10); mem.(11) ];
  Alcotest.(check bool) "quiesced" true (b.MI.quiesced ())

let () =
  Alcotest.run "pv_prevv_backend"
    [
      ( "prevv",
        [
          Alcotest.test_case "premature read" `Quick test_premature_read;
          Alcotest.test_case "store buffered then committed" `Quick
            test_store_buffered_then_committed;
          Alcotest.test_case "commit in program order" `Quick
            test_commit_in_program_order;
          Alcotest.test_case "violation and squash" `Quick
            test_violation_and_squash;
          Alcotest.test_case "value validation (Eq. 5)" `Quick
            test_value_validation_passes;
          Alcotest.test_case "load gate waits" `Quick test_load_gate_wait;
          Alcotest.test_case "fake tokens" `Quick test_fake_tokens;
          Alcotest.test_case "no fake tokens wedges" `Quick
            test_no_fake_tokens_wedges;
          Alcotest.test_case "port quota" `Quick test_port_quota;
          Alcotest.test_case "depth guard" `Quick test_depth_guard;
          Alcotest.test_case "SAF retirement" `Quick test_saf_retirement;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "silent PQ flip caught by Eq. 5" `Quick
            test_silent_pq_flip_caught;
          Alcotest.test_case "stale injected squash refused" `Quick
            test_inject_stale_squash_refused;
          Alcotest.test_case "livelock guard degrades admission" `Quick
            test_livelock_guard_unit;
          Alcotest.test_case "minimal depth backpressures, never raises" `Quick
            test_min_depth_backpressure;
        ] );
    ]
