(* Fault-injection and resilience tests.

   Detected faults (drop-replay, flip-replay, spurious squash, ECC-flagged
   premature-queue corruption) drive the existing squash/replay machinery
   and must be fully recoverable: the final memory matches the reference
   interpreter.  Silent faults must never produce a silent wrong answer:
   they either verify clean anyway or end in a diagnosed Deadlock/Timeout
   whose post-mortem names the injected disturbance.  A stuck squash
   source must trip the livelock guard, which degrades to non-speculative
   admission and still completes correctly. *)

open Pv_core
module Fault = Pv_dataflow.Fault
module Sim = Pv_dataflow.Sim
module Graph = Pv_dataflow.Graph
module MI = Pv_dataflow.Memif

let kernels =
  [ "polyn_mult"; "triangular_tight"; "cond_update"; "histogram"; "fn_dependent" ]

let compile name = Pipeline.compile (Pv_kernels.Defs.by_name name)

let run_with_faults ?(dis = Pipeline.prevv 16) ?(stall_limit = 4096)
    ?(max_cycles = 200_000) compiled faults =
  let sim_cfg =
    { Sim.default_config with Sim.faults; stall_limit; max_cycles }
  in
  Pipeline.simulate ~sim_cfg compiled dis

let outcome_str result =
  Format.asprintf "%a%a" Sim.pp_outcome result.Pipeline.outcome
    (Format.pp_print_option Sim.pp_post_mortem)
    (Pipeline.post_mortem result)

(* --- recoverable plans --------------------------------------------------- *)

(* Every seed-derived plan of detected faults must end Finished with memory
   identical to the reference interpreter, on every kernel. *)
let test_recoverable name () =
  let compiled = compile name in
  let fault_free = Pipeline.simulate compiled (Pipeline.prevv 16) in
  let horizon = max 20 (fault_free.Pipeline.cycles / 2) in
  let fired = ref 0 in
  for seed = 1 to 6 do
    let faults =
      Fault.random_recoverable ~n:5 ~seed
        ~n_chans:(Graph.n_chans compiled.Pipeline.graph)
        ~max_seq:(Pv_frontend.Trace.length compiled.Pipeline.trace)
        ~horizon ()
    in
    let result = run_with_faults compiled faults in
    (match result.Pipeline.outcome with
    | Sim.Finished _ -> ()
    | _ ->
        Alcotest.failf "%s seed %d under %s: %s" name seed
          (Fault.to_string faults) (outcome_str result));
    (match Pipeline.verify compiled result with
    | [] -> ()
    | l ->
        Alcotest.failf "%s seed %d under %s: %d memory mismatches" name seed
          (Fault.to_string faults) (List.length l));
    fired :=
      !fired + result.Pipeline.mem_stats.MI.faults
      + result.Pipeline.mem_stats.MI.squashes
  done;
  if !fired = 0 then
    Alcotest.failf "%s: no injected fault ever took effect (vacuous test)" name

(* One plan exercising each detected kind at once, on an ambiguous kernel:
   dropped token, flipped token, a channel stall, a spurious squash and an
   ECC-flagged queue corruption — still Finished, still correct. *)
let test_all_detected_kinds name () =
  let compiled = compile name in
  let g = compiled.Pipeline.graph in
  let chan_a = 0 and chan_b = Graph.n_chans g / 2 in
  let faults =
    [
      { Fault.at_cycle = 12; action = Fault.Drop_replay { chan = chan_a } };
      { Fault.at_cycle = 20; action = Fault.Flip_replay { chan = chan_b; mask = 0xff } };
      { Fault.at_cycle = 28; action = Fault.Stall { chan = chan_a; cycles = 17 } };
      { Fault.at_cycle = 36; action = Fault.Backend (Fault.B_squash { seq = 7 }) };
      {
        Fault.at_cycle = 44;
        action =
          Fault.Backend
            (Fault.B_pq_flip { inst = 0; slot = 0; mask = 0xffff; detect = true });
      };
    ]
  in
  let result = run_with_faults compiled faults in
  (match result.Pipeline.outcome with
  | Sim.Finished _ -> ()
  | _ -> Alcotest.failf "%s: %s" name (outcome_str result));
  Alcotest.(check int)
    (name ^ " memory matches interpreter")
    0
    (List.length (Pipeline.verify compiled result));
  Alcotest.(check bool)
    "at least one backend fault accepted" true
    (result.Pipeline.mem_stats.MI.faults > 0)

(* --- unrecoverable plans: diagnosed, never silently wrong ---------------- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* common post-mortem obligations; returns the post-mortem so each caller
   can additionally assert its failure's specific signature *)
let diagnosed name result =
  match result.Pipeline.outcome with
  | Sim.Deadlock { post_mortem = pm; _ } | Sim.Timeout { post_mortem = pm; _ } ->
      Alcotest.(check bool)
        (name ^ ": an injected fault fired")
        true
        (List.exists (fun ap -> ap.Fault.ap_fired_at <> None) pm.Sim.pm_faults);
      Alcotest.(check bool)
        (name ^ ": backend snapshot present")
        true
        (String.length pm.Sim.pm_backend > 0);
      let rendered = Format.asprintf "%a" Sim.pp_post_mortem pm in
      Alcotest.(check bool) (name ^ ": post-mortem renders") true
        (String.length rendered > 40);
      pm
  | Sim.Finished _ -> Alcotest.failf "%s: expected a diagnosed hang" name

(* silently losing a skip notification erases an arrival the commit frontier
   is waiting for: the datapath drains but the run can never retire; the
   watchdog must catch it and the fault log must name the lost token.
   (A skip channel is the right victim: on a data channel a silent drop
   mis-pairs the streams instead of starving them, which the port/ROM
   consistency checks catch as a hard error rather than a hang.) *)
let test_unrecoverable_drop () =
  let compiled = compile "cond_update" in
  let g = compiled.Pipeline.graph in
  let chan =
    let found = ref None in
    Graph.iter_chans
      (fun c ->
        if !found = None then
          match (Graph.node g c.Graph.dst.Graph.node).Graph.kind with
          | Pv_dataflow.Types.Skip _ -> found := Some c.Graph.cid
          | _ -> ())
      g;
    match !found with
    | Some c -> c
    | None -> Alcotest.fail "cond_update has no skip input channel"
  in
  let faults = [ { Fault.at_cycle = 15; action = Fault.Drop { chan } } ] in
  let result = run_with_faults ~stall_limit:512 compiled faults in
  let pm = diagnosed "silent drop" result in
  let rendered = Format.asprintf "%a" Sim.pp_post_mortem pm in
  Alcotest.(check bool) "fault log names the lost token" true
    (contains rendered "lost")

(* a stall longer than the watchdog freezes the pipeline: Deadlock, with
   the frozen channel reported *)
let test_unrecoverable_stall () =
  let compiled = compile "histogram" in
  let faults =
    [ { Fault.at_cycle = 10; action = Fault.Stall { chan = 0; cycles = 1_000_000 } } ]
  in
  let result = run_with_faults ~stall_limit:512 compiled faults in
  let pm = diagnosed "endless stall" result in
  Alcotest.(check bool) "frozen channel listed" true
    (List.mem 0 pm.Sim.pm_fault_stalls);
  Alcotest.(check bool) "a stalled node is named" true (pm.Sim.pm_stalled <> [])

(* an undetected SEU on a premature-queue valid bit erases the record of an
   operation that already happened: the commit frontier waits forever *)
let test_unrecoverable_pq_drop () =
  let compiled = compile "histogram" in
  let faults =
    [ { Fault.at_cycle = 20; action = Fault.Backend (Fault.B_pq_drop { inst = 0; slot = 0 }) } ]
  in
  let result = run_with_faults ~stall_limit:512 compiled faults in
  ignore (diagnosed "silent PQ drop" result)

(* --- livelock guard ------------------------------------------------------ *)

(* a squash source stuck on one iteration must trip the guard: the backend
   records the degradation, stops speculating, and still finishes with the
   correct memory *)
let test_livelock_guard () =
  let compiled = compile "histogram" in
  let faults =
    List.init 30 (fun k ->
        { Fault.at_cycle = 2 + (2 * k);
          action = Fault.Backend (Fault.B_squash { seq = 2 }) })
  in
  let dis =
    Pipeline.Prevv
      { (Pv_prevv.Backend.named ~depth:16) with Pv_prevv.Backend.squash_budget = 4 }
  in
  let result = run_with_faults ~dis compiled faults in
  (match result.Pipeline.outcome with
  | Sim.Finished _ -> ()
  | _ -> Alcotest.failf "livelock run did not finish: %s" (outcome_str result));
  Alcotest.(check bool) "guard engaged (degraded recorded)" true
    (result.Pipeline.mem_stats.MI.degraded >= 1);
  Alcotest.(check bool) "squash streak exceeded the budget" true
    (result.Pipeline.mem_stats.MI.squashes > 4);
  Alcotest.(check int) "memory still matches interpreter" 0
    (List.length (Pipeline.verify compiled result))

(* a storm shorter than the budget must NOT trip the guard: ordinary
   recoverable turbulence is absorbed by plain squash/replay, and the run
   stays fully speculative *)
let test_livelock_guard_off () =
  let compiled = compile "histogram" in
  let faults =
    List.init 6 (fun k ->
        { Fault.at_cycle = 2 + (2 * k);
          action = Fault.Backend (Fault.B_squash { seq = 2 }) })
  in
  let result = run_with_faults compiled faults in
  (match result.Pipeline.outcome with
  | Sim.Finished _ -> ()
  | _ -> Alcotest.failf "did not finish: %s" (outcome_str result));
  Alcotest.(check int) "default budget untripped" 0
    result.Pipeline.mem_stats.MI.degraded;
  Alcotest.(check int) "memory matches interpreter" 0
    (List.length (Pipeline.verify compiled result))

(* --- plan syntax --------------------------------------------------------- *)

let test_parse_roundtrip () =
  let plan =
    [
      { Fault.at_cycle = 40; action = Fault.Drop { chan = 3 } };
      { Fault.at_cycle = 41; action = Fault.Drop_replay { chan = 4 } };
      { Fault.at_cycle = 100; action = Fault.Stall { chan = 7; cycles = 64 } };
      { Fault.at_cycle = 120; action = Fault.Flip { chan = 2; mask = 0xff } };
      { Fault.at_cycle = 130; action = Fault.Flip_replay { chan = 9; mask = 0x10 } };
      { Fault.at_cycle = 200; action = Fault.Backend (Fault.B_squash { seq = 5 }) };
      {
        Fault.at_cycle = 210;
        action =
          Fault.Backend
            (Fault.B_pq_flip { inst = 1; slot = 2; mask = 0xbeef; detect = true });
      };
      {
        Fault.at_cycle = 220;
        action = Fault.Backend (Fault.B_pq_drop { inst = 0; slot = 3 });
      };
    ]
  in
  (match Fault.parse (Fault.to_string plan) with
  | Ok p ->
      Alcotest.(check string) "round-trips" (Fault.to_string plan)
        (Fault.to_string p)
  | Error e -> Alcotest.failf "parse of own output failed: %s" e);
  (match Fault.parse "" with
  | Ok [] -> ()
  | _ -> Alcotest.fail "empty string should parse to the empty plan");
  List.iter
    (fun bad ->
      match Fault.parse bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S should not parse" bad)
    [ "40:drop"; "x:drop:c3"; "40:drop:3"; "40:frobnicate:c1"; "40:stall:c1";
      "40:pqflip:0:0:1:maybe" ]

let test_random_plans_deterministic () =
  let mk seed =
    Fault.to_string
      (Fault.random_recoverable ~seed ~n_chans:50 ~max_seq:100 ~horizon:400 ())
  in
  Alcotest.(check string) "same seed, same plan" (mk 11) (mk 11);
  Alcotest.(check bool) "different seeds differ" true (mk 11 <> mk 12)

(* --- fragmentation ablation ---------------------------------------------- *)

(* with interior-slot collapse disabled (the naive Fig. 4 pointer queue) a
   small queue fragments: retired loads stuck behind live stores eat
   capacity that only head-skipping can slowly reclaim.  It never wedges —
   the wrapped head pointer always finds the oldest live entry — but at
   tight depths the lost capacity is a measurable admission-stall tax.
   Both variants must still verify; the naive one must be strictly slower
   at every depth and markedly slower at the largest. *)
let test_fragmentation_tax () =
  let compiled = compile "triangular" in
  let base = Pv_prevv.Backend.named ~depth:16 in
  let cycles_at depth_q collapse_queue =
    let dis =
      Pipeline.Prevv { base with Pv_prevv.Backend.depth_q; collapse_queue }
    in
    let result = run_with_faults ~dis ~stall_limit:1024 compiled [] in
    (match result.Pipeline.outcome with
    | Sim.Finished _ -> ()
    | _ ->
        Alcotest.failf "depth_q=%d collapse=%b: %s" depth_q collapse_queue
          (outcome_str result));
    Alcotest.(check int)
      (Printf.sprintf "depth_q=%d collapse=%b verifies" depth_q collapse_queue)
      0
      (List.length (Pipeline.verify compiled result));
    result.Pipeline.cycles
  in
  let ratios =
    List.map
      (fun depth_q ->
        let naive = cycles_at depth_q false in
        let collapsing = cycles_at depth_q true in
        Alcotest.(check bool)
          (Printf.sprintf "depth_q=%d: fragmentation costs cycles (%d vs %d)"
             depth_q naive collapsing)
          true (naive > collapsing);
        float_of_int naive /. float_of_int collapsing)
      [ 4; 5; 6 ]
  in
  Alcotest.(check bool) "tax exceeds 25% at some tight depth" true
    (List.exists (fun r -> r > 1.25) ratios)

let () =
  Alcotest.run "fault"
    [
      ( "recoverable",
        List.map
          (fun name -> Alcotest.test_case name `Quick (test_recoverable name))
          kernels );
      ( "detected-kinds",
        [
          Alcotest.test_case "histogram" `Quick
            (test_all_detected_kinds "histogram");
          Alcotest.test_case "triangular_tight" `Quick
            (test_all_detected_kinds "triangular_tight");
        ] );
      ( "unrecoverable",
        [
          Alcotest.test_case "silent drop wedges the commit frontier" `Quick
            test_unrecoverable_drop;
          Alcotest.test_case "endless stall deadlocks" `Quick
            test_unrecoverable_stall;
          Alcotest.test_case "silent PQ drop wedges the frontier" `Quick
            test_unrecoverable_pq_drop;
        ] );
      ( "livelock",
        [
          Alcotest.test_case "guard degrades and still verifies" `Quick
            test_livelock_guard;
          Alcotest.test_case "finite storm without guard" `Quick
            test_livelock_guard_off;
        ] );
      ( "plans",
        [
          Alcotest.test_case "to_string/parse round-trip" `Quick
            test_parse_roundtrip;
          Alcotest.test_case "random plans are seed-deterministic" `Quick
            test_random_plans_deterministic;
        ] );
      ( "ablation",
        [
          Alcotest.test_case "fragmentation tax without collapse" `Quick
            test_fragmentation_tax;
        ] );
    ]
