(* Performance-contract tests for the data-oriented simulator core:
   a steady-state cycle of the event engine performs zero minor-heap
   allocation, the squash purge path allocates nothing, the event engine
   never does more node evaluations than the scan, and the timer wheel
   fires equal-expiry wakes in FIFO order.

   Allocation is asserted as a slope, not an absolute: each measurement
   window carries a small constant overhead (the float boxes of the
   [Gc.minor_words] probes themselves), so two windows of different
   lengths are compared — any per-cycle allocation would make the longer
   window's delta strictly larger. *)

open Pv_core
module Sim = Pv_dataflow.Sim
module Memif = Pv_dataflow.Memif
module Wheel = Pv_dataflow.Wheel

let kernels = Pv_kernels.Defs.paper_benchmarks ()

let schemes =
  List.map (fun (module M : Scheme.S) -> (M.name, M.config)) (Scheme.all ())

(* An event-engine simulation of [kernel] over the allocation-free direct
   backend, so the measurement isolates the simulator core.  [prof]
   defaults to the disabled profiler — the configuration whose zero-alloc
   contract test (a) asserts. *)
let direct_sim ?prof kernel =
  let compiled = Pipeline.compile kernel in
  let mem =
    Pv_memory.Layout.initial_memory compiled.Pipeline.layout
      compiled.Pipeline.kernel ~init:[]
  in
  let backend = Memif.direct ~latency:2 mem in
  Sim.create ?prof
    ~cfg:{ Sim.default_config with Sim.engine = Sim.Event }
    compiled.Pipeline.graph backend

let minor_delta f =
  let w0 = Gc.minor_words () in
  f ();
  Gc.minor_words () -. w0

let steps sim n =
  for _ = 1 to n do
    Sim.step sim
  done

(* (a) zero allocation per steady-state cycle, each paper kernel. *)
let test_zero_alloc_steady () =
  List.iter
    (fun kernel ->
      let name = kernel.Pv_kernels.Ast.name in
      let sim = direct_sim kernel in
      (* warm up: ring capacities, response arrays, wake plumbing *)
      steps sim 200;
      let d_short = minor_delta (fun () -> steps sim 300) in
      let d_long = minor_delta (fun () -> steps sim 1000) in
      Alcotest.(check bool)
        (name ^ ": still streaming through the measurement window")
        false (Sim.finished sim);
      Alcotest.(check (float 0.0))
        (name ^ ": minor words per cycle")
        0.0
        ((d_long -. d_short) /. 700.0))
    kernels

(* (b) the event engine never evaluates more nodes than the scan, on any
   kernel x scheme cell. *)
let test_evals_bounded () =
  List.iter
    (fun kernel ->
      let compiled = Pipeline.compile kernel in
      List.iter
        (fun (sname, dis) ->
          let run engine =
            let sim_cfg = { Sim.default_config with Sim.engine } in
            (Pipeline.simulate ~sim_cfg compiled dis).Pipeline.run_stats
              .Sim.evals
          in
          let scan = run Sim.Scan and event = run Sim.Event in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s: event evals (%d) <= scan evals (%d)"
               kernel.Pv_kernels.Ast.name sname event scan)
            true (event <= scan))
        schemes)
    kernels

(* (c) squash recovery allocates nothing: the purge compacts ring-held
   state in place (the retired allocate-a-scratch-queue-per-squash pattern
   would show up as a per-purge slope here).  The gaussian premise check
   documents that the squash path is actually exercised by a paper
   kernel. *)
let test_purge_no_alloc () =
  let gaussian =
    List.find (fun k -> k.Pv_kernels.Ast.name = "gaussian") kernels
  in
  let compiled = Pipeline.compile gaussian in
  let prevv16 =
    match
      List.find_opt (fun (n, _) -> n = "prevv16") schemes
    with
    | Some (_, dis) -> dis
    | None -> Alcotest.fail "prevv16 not registered"
  in
  let r = Pipeline.simulate compiled prevv16 in
  Alcotest.(check bool)
    "gaussian under prevv16 is squash-heavy" true
    (r.Pipeline.mem_stats.Memif.squashes > 0);
  let sim = direct_sim gaussian in
  steps sim 150;
  (* first purge does the real in-place compaction work (tokens are in
     flight); later ones sweep already-empty state — neither may allocate *)
  let purges n =
    minor_delta (fun () ->
        for _ = 1 to n do
          Sim.purge sim ~seq_err:0
        done)
  in
  let d_short = purges 10 in
  let d_long = purges 100 in
  Alcotest.(check (float 0.0))
    "minor words per purge" 0.0
    ((d_long -. d_short) /. 90.0)

(* (e) the enabled profiler stays on the zero-allocation budget too: it
   only increments preallocated flat arrays, so a profiled steady-state
   cycle allocates exactly as much as an unprofiled one — nothing. *)
let test_zero_alloc_profiled () =
  List.iter
    (fun kernel ->
      let name = kernel.Pv_kernels.Ast.name in
      let sim = direct_sim ~prof:(Pv_obs.Prof.create ()) kernel in
      steps sim 200;
      let d_short = minor_delta (fun () -> steps sim 300) in
      let d_long = minor_delta (fun () -> steps sim 1000) in
      Alcotest.(check (float 0.0))
        (name ^ ": minor words per profiled cycle")
        0.0
        ((d_long -. d_short) /. 700.0))
    kernels

(* (f) profiling is read-only: cycles, evals and per-node fires are
   identical with the profiler on or off, on every paper kernel under
   both instrumented backends. *)
let test_prof_non_perturbing () =
  List.iter
    (fun kernel ->
      let compiled = Pipeline.compile kernel in
      List.iter
        (fun (sname, dis) ->
          let name = kernel.Pv_kernels.Ast.name ^ "/" ^ sname in
          let base = Pipeline.simulate compiled dis in
          let profiled =
            Pipeline.simulate ~prof:(Pv_obs.Prof.create ()) compiled dis
          in
          Alcotest.(check int)
            (name ^ ": cycles unchanged")
            base.Pipeline.cycles profiled.Pipeline.cycles;
          Alcotest.(check int)
            (name ^ ": evals unchanged")
            base.Pipeline.run_stats.Sim.evals
            profiled.Pipeline.run_stats.Sim.evals;
          Alcotest.(check bool)
            (name ^ ": per-node fires unchanged")
            true
            (base.Pipeline.run_stats.Sim.node_fires
            = profiled.Pipeline.run_stats.Sim.node_fires))
        [ ("prevv16", Pipeline.prevv 16); ("fast-lsq", Pipeline.fast_lsq) ])
    kernels

(* (g) the packed premature-queue/arbiter unit paths allocate nothing:
   record admission, both CAM-view scans (the gate and store-violation
   checking on non-matching addresses, so neither returns a boxed
   [Forward]/[Some]) and both retirement sweeps run purely on the flat
   int arrays. *)
let test_queue_paths_no_alloc () =
  let module PQ = Pv_prevv.Premature_queue in
  let module Arb = Pv_prevv.Arbiter in
  let q = PQ.create 64 in
  let nop (_ : int) = () in
  (* loads live at addresses 0..7, stores at 8..15: the gate always comes
     back [Clear] and violation checking always [None] — immediates *)
  let cycle i =
    ignore
      (PQ.record q ~seq:i ~pos:0 ~port:0 ~kind:Pv_memory.Portmap.OLoad
         ~index:(i land 7) ~value:0
        : bool);
    ignore
      (Arb.load_gate q ~seq:i ~pos:1 ~index:(8 + (i land 7)) : Arb.load_gate);
    ignore
      (PQ.record q ~seq:i ~pos:1 ~port:1 ~kind:Pv_memory.Portmap.OStore
         ~index:(8 + (i land 7)) ~value:i
        : bool);
    ignore
      (Arb.store_violation q ~seq:i ~pos:1 ~index:(8 + (i land 7)) ~value:i
        : int option);
    ignore (PQ.retire_loads_below q ~seq:(i - 4) ~on_port:nop : int);
    ignore (PQ.retire_eq q ~seq:(i - 4) ~on_port:nop : int)
  in
  let window lo n =
    minor_delta (fun () ->
        for i = lo to lo + n - 1 do
          cycle i
        done)
  in
  ignore (window 0 100 : float) (* warm-up: view arrays, compaction *);
  let d_short = window 100 300 in
  let d_long = window 400 1000 in
  Alcotest.(check (float 0.0))
    "minor words per queue cycle" 0.0
    ((d_long -. d_short) /. 700.0)

(* (h) Prof attribution counts records {e actually scanned}: under
   incremental validation, each gated load charges [arbiter_scan] by
   exactly the store-view population and each arriving store charges
   [pq_validate] by exactly the load-view population, at the moment the
   operation reaches the arbiter. *)
let test_prof_records_scanned () =
  let module B = Pv_prevv.Backend in
  (* one ambiguous array: load port 0, store port 1, one group *)
  let pm =
    {
      Pv_memory.Portmap.ports =
        [|
          { Pv_memory.Portmap.id = 0; kind = Pv_memory.Portmap.OLoad;
            array = "x"; instance = Some 0; conditional = false };
          { Pv_memory.Portmap.id = 1; kind = Pv_memory.Portmap.OStore;
            array = "x"; instance = Some 0; conditional = false };
        |];
      n_groups = 1;
      n_instances = 1;
      rom = [| [| [| 0; 1 |] |] |];
    }
  in
  let cfg =
    {
      B.depth_q = 16;
      mem_latency = 1;
      commits_per_cycle = 2;
      fake_tokens = true;
      value_validation = true;
      collapse_queue = true;
      squash_budget = 8;
    }
  in
  let prof = Pv_obs.Prof.create () in
  let mem = Array.make 32 0 in
  let b = B.create ~prof cfg pm mem in
  for s = 0 to 6 do
    Alcotest.(check bool) "begin accepted" true
      (b.Memif.begin_instance ~seq:s ~group:0)
  done;
  let key s = Pv_dataflow.Types.Token.make ~seq:s ~epoch:0 in
  let phase p = (Pv_obs.Prof.phase_totals prof).(p) in
  let arb () = phase Pv_obs.Prof.phase_arbiter_scan in
  let pqv () = phase Pv_obs.Prof.phase_pq_validate in
  (* three stores into an empty queue: zero load records to accuse *)
  let pqv0 = pqv () in
  for s = 0 to 2 do
    Alcotest.(check bool) "store accepted" true
      (b.Memif.store_req ~port:1 ~key:(key s) ~addr:(1 + s) ~value:(10 + s))
  done;
  Alcotest.(check int) "stores against an empty load view scan nothing" 0
    (pqv () - pqv0);
  (* three loads, each gated against the three queued stores (disjoint
     addresses, so the verdict is Clear and the load is recorded); the
     response is drained between loads to keep the port slot free —
     clocking never touches [arbiter_scan], which is charged only at the
     gate itself *)
  for s = 3 to 5 do
    let a0 = arb () in
    Alcotest.(check bool) "load accepted" true
      (b.Memif.load_req ~port:0 ~key:(key s) ~addr:(10 + s));
    Alcotest.(check int)
      (Printf.sprintf "gated load %d scans the full store view" s)
      3 (arb () - a0);
    let rec drain limit =
      if limit = 0 then Alcotest.fail "load response never arrived";
      match Memif.poll b ~port:0 with
      | Some _ -> ()
      | None ->
          b.Memif.clock ();
          drain (limit - 1)
    in
    drain 10
  done;
  (* one younger store: violation checking scans the three load records *)
  let pqv1 = pqv () in
  Alcotest.(check bool) "final store accepted" true
    (b.Memif.store_req ~port:1 ~key:(key 6) ~addr:20 ~value:9);
  Alcotest.(check int) "arriving store scans the full load view" 3
    (pqv () - pqv1)

(* (d) wheel ordering: equal-expiry entries fire in insertion order, and
   an entry a full lap ahead stays parked in the shared bucket. *)
let test_wheel_fifo () =
  let w = Wheel.create ~buckets:16 () in
  Wheel.add w ~at:5 1;
  Wheel.add w ~at:5 2;
  Wheel.add w ~at:21 9;  (* same bucket as cycle 5, one lap later *)
  Wheel.add w ~at:5 3;
  let fired = ref [] in
  let drain_at now = Wheel.drain w ~now (fun p -> fired := p :: !fired) in
  drain_at 5;
  Alcotest.(check (list int)) "cycle 5 fires FIFO" [ 1; 2; 3 ]
    (List.rev !fired);
  Alcotest.(check int) "lap-ahead entry still parked" 1 (Wheel.pending w);
  fired := [];
  for now = 6 to 20 do
    drain_at now
  done;
  Alcotest.(check (list int)) "nothing due before its lap" [] (List.rev !fired);
  drain_at 21;
  Alcotest.(check (list int)) "parked entry fires on its own lap" [ 9 ]
    (List.rev !fired)

let () =
  Alcotest.run "sim_perf"
    [
      ( "alloc",
        [
          Alcotest.test_case "steady-state cycles allocate nothing" `Quick
            test_zero_alloc_steady;
          Alcotest.test_case "purge allocates nothing" `Quick
            test_purge_no_alloc;
          Alcotest.test_case "profiled cycles allocate nothing" `Quick
            test_zero_alloc_profiled;
          Alcotest.test_case "packed queue paths allocate nothing" `Quick
            test_queue_paths_no_alloc;
        ] );
      ( "prof",
        [
          Alcotest.test_case "profiling does not perturb" `Quick
            test_prof_non_perturbing;
          Alcotest.test_case "attribution counts records scanned" `Quick
            test_prof_records_scanned;
        ] );
      ( "evals",
        [
          Alcotest.test_case "event <= scan on every kernel x scheme" `Slow
            test_evals_bounded;
        ] );
      ( "wheel",
        [ Alcotest.test_case "FIFO within a bucket" `Quick test_wheel_fifo ] );
    ]
