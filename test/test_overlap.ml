(* Overlap scalability model (Sec. V-B, Eqs. 11-12) and the run
   reduction.

   Regression: naive_frequency used to ignore the overlap degree
   entirely ([log2 frq1]), so the modelled frequency collapse was
   independent of [n] and the function was dead code.  These tests pin
   the Eq. 12 shape: equal to [frq1] at [n = 1] and monotonically
   decreasing in [n]. *)

open Pv_prevv

let feq a b = Alcotest.(check (float 1e-9)) "float" a b

let test_eq12_identity_at_one () =
  feq 300.0 (Overlap.naive_frequency ~n:1 ~frq1:300.0);
  feq 150.0 (Overlap.naive_frequency ~n:1 ~frq1:150.0)

let test_eq12_monotone_decreasing () =
  let frq1 = 150.0 in
  let prev = ref infinity in
  for n = 1 to 16 do
    let f = Overlap.naive_frequency ~n ~frq1 in
    if not (f < !prev) then
      Alcotest.failf "naive_frequency not strictly decreasing at n=%d: %f >= %f"
        n f !prev;
    if not (f > 0.0) then
      Alcotest.failf "naive_frequency not positive at n=%d: %f" n f;
    prev := f
  done

let test_eq12_collapse_rate () =
  (* the replicated validation tree of Eq. 11 deepens one comparator
     level per overlap: frq_n = frq1 / log2(2^n) = frq1 / n *)
  feq 75.0 (Overlap.naive_frequency ~n:2 ~frq1:150.0);
  feq 37.5 (Overlap.naive_frequency ~n:4 ~frq1:150.0);
  feq 25.0 (Overlap.naive_frequency ~n:6 ~frq1:150.0)

let test_eq12_invalid_n () =
  Alcotest.check_raises "n = 0"
    (Invalid_argument "Overlap.naive_frequency: n must be >= 1") (fun () ->
      ignore (Overlap.naive_frequency ~n:0 ~frq1:150.0))

let test_eq11_exponential () =
  feq 2.0 (Overlap.naive_complexity ~n:1 ~com1:1.0);
  feq 64.0 (Overlap.naive_complexity ~n:5 ~com1:2.0);
  (* the reduction is linear in the member count *)
  feq 5.0 (Overlap.reduced_complexity ~n:5 ~com1:1.0);
  feq 1.0 (Overlap.reduced_complexity ~n:0 ~com1:1.0)

let test_pairs () =
  let ld k = (Pv_memory.Portmap.OLoad, k) and st k = (Pv_memory.Portmap.OStore, k) in
  let ops = [ ld 0; st 1; ld 2; st 3 ] in
  (* every load-store combination across the sequence *)
  Alcotest.(check int) "naive pairs" 4 (Overlap.naive_pairs ops);
  (* one representative per same-kind run: adjacencies only *)
  Alcotest.(check int) "reduced pairs" 3 (Overlap.reduced_pairs ops);
  let runs = Overlap.reduce_runs [ ld 0; ld 1; st 2; st 3; ld 4 ] in
  Alcotest.(check int) "runs collapsed" 3 (List.length runs)

let () =
  Alcotest.run "overlap"
    [
      ( "eq12",
        [
          Alcotest.test_case "frq at n=1 is frq1" `Quick test_eq12_identity_at_one;
          Alcotest.test_case "monotone decreasing in n" `Quick
            test_eq12_monotone_decreasing;
          Alcotest.test_case "collapse rate frq1/n" `Quick test_eq12_collapse_rate;
          Alcotest.test_case "rejects n < 1" `Quick test_eq12_invalid_n;
        ] );
      ( "eq11",
        [ Alcotest.test_case "2^n vs linear" `Quick test_eq11_exponential ] );
      ("pairs", [ Alcotest.test_case "pair counting" `Quick test_pairs ]);
    ]
