(* Behavioural tests for the LSQ backends, driving the Memif contract
   directly (allocation, ordering, forwarding, commit, backpressure). *)

open Pv_memory
module MI = Pv_dataflow.Memif

let tkey s = Pv_dataflow.Types.Token.make ~seq:s ~epoch:0

(* one ambiguous array "x" with a load (port 0) and a store (port 1) in one
   group, plus a direct load port 2 on array "y" *)
let portmap () =
  {
    Portmap.ports =
      [|
        { Portmap.id = 0; kind = Portmap.OLoad; array = "x"; instance = Some 0; conditional = false };
        { Portmap.id = 1; kind = Portmap.OStore; array = "x"; instance = Some 0; conditional = false };
        { Portmap.id = 2; kind = Portmap.OLoad; array = "y"; instance = None; conditional = false };
      |];
    n_groups = 1;
    n_instances = 1;
    rom = [| [| [| 0; 1 |] |] |];
  }

let quick_cfg =
  {
    Pv_lsq.Lsq.lq_depth = 4;
    sq_depth = 4;
    alloc_delay = 0;
    alloc_per_cycle = 2;
    mem_latency = 1;
    issues_per_cycle = 8;
    commits_per_cycle = 4;
    forwarding = true;
  }

let fresh ?(cfg = quick_cfg) () =
  let mem = Array.make 32 0 in
  Array.iteri (fun i _ -> mem.(i) <- 100 + i) mem;
  let b = Pv_lsq.Lsq.create cfg (portmap ()) mem in
  (mem, b)

let step (b : MI.t) = b.MI.clock ()

let rec poll_until ?(limit = 20) (b : MI.t) ~port =
  match MI.poll b ~port with
  | Some (key, v) -> (Pv_dataflow.Types.Token.seq key, v)
  | None ->
      if limit = 0 then Alcotest.fail "no response within limit";
      step b;
      poll_until ~limit:(limit - 1) b ~port

let test_load_needs_allocation () =
  let _, b = fresh () in
  Alcotest.(check bool) "unallocated load refused" false
    (b.MI.load_req ~port:0 ~key:(tkey 0) ~addr:3);
  Alcotest.(check bool) "allocation" true (b.MI.begin_instance ~seq:0 ~group:0);
  Alcotest.(check bool) "allocated load accepted" true
    (b.MI.load_req ~port:0 ~key:(tkey 0) ~addr:3)

let test_load_reads_memory () =
  let _, b = fresh () in
  ignore (b.MI.begin_instance ~seq:0 ~group:0);
  ignore (b.MI.load_req ~port:0 ~key:(tkey 0) ~addr:5);
  (* the load cannot issue while the same-group older... the store of seq 0
     is ROM-later, so it does not block; response arrives after latency *)
  let seq, v = poll_until b ~port:0 in
  Alcotest.(check (pair int int)) "value from memory" (0, 105) (seq, v)

let test_load_waits_for_store_address () =
  let _, b = fresh () in
  ignore (b.MI.begin_instance ~seq:0 ~group:0);
  ignore (b.MI.begin_instance ~seq:1 ~group:0);
  (* seq 1's load arrives while seq 0's store address is unknown *)
  ignore (b.MI.load_req ~port:0 ~key:(tkey 1) ~addr:5);
  step b;
  step b;
  step b;
  Alcotest.(check bool) "no response while ordering unknown" true
    (MI.poll b ~port:0 = None);
  (* resolve the older load and store of seq 0 at a different address *)
  ignore (b.MI.load_req ~port:0 ~key:(tkey 0) ~addr:9);
  b.MI.store_addr ~port:1 ~key:(tkey 0) ~addr:7;
  step b;
  step b;
  (* responses come back in request order per port: seq 1 asked first *)
  let s0, v0 = poll_until b ~port:0 in
  Alcotest.(check (pair int int)) "first requester first" (1, 105) (s0, v0);
  let s1, v1 = poll_until b ~port:0 in
  Alcotest.(check (pair int int)) "then the older load" (0, 109) (s1, v1)

let test_store_to_load_forwarding () =
  let mem, b = fresh () in
  ignore (b.MI.begin_instance ~seq:0 ~group:0);
  ignore (b.MI.begin_instance ~seq:1 ~group:0);
  ignore (b.MI.load_req ~port:0 ~key:(tkey 0) ~addr:2);
  (* seq 0 stores 999 to address 5; seq 1 loads address 5 before commit *)
  Alcotest.(check bool) "store accepted" true
    (b.MI.store_req ~port:1 ~key:(tkey 0) ~addr:5 ~value:999);
  ignore (b.MI.load_req ~port:0 ~key:(tkey 1) ~addr:5);
  ignore (poll_until b ~port:0);
  let _, v = poll_until b ~port:0 in
  Alcotest.(check int) "forwarded value" 999 v;
  (* and the commit eventually lands in memory; the unused store entry of
     instance 1 is cancelled so the queue can drain *)
  Alcotest.(check bool) "cancel seq 1 store" true (b.MI.op_skip ~port:1 ~key:(tkey 1));
  let rec drain n = if n > 0 then begin step b; drain (n - 1) end in
  drain 10;
  Alcotest.(check int) "committed" 999 mem.(5);
  Alcotest.(check bool) "quiesced" true (b.MI.quiesced ())

let test_commit_in_order () =
  let mem, b = fresh () in
  ignore (b.MI.begin_instance ~seq:0 ~group:0);
  ignore (b.MI.begin_instance ~seq:1 ~group:0);
  ignore (b.MI.load_req ~port:0 ~key:(tkey 0) ~addr:0);
  ignore (b.MI.load_req ~port:0 ~key:(tkey 1) ~addr:0);
  (* both stores hit the same address; the younger arrives first *)
  ignore (b.MI.store_req ~port:1 ~key:(tkey 1) ~addr:6 ~value:222);
  step b;
  Alcotest.(check int) "younger store not committed first" 106 mem.(6);
  ignore (b.MI.store_req ~port:1 ~key:(tkey 0) ~addr:6 ~value:111);
  let rec drain n = if n > 0 then begin step b; drain (n - 1) end in
  drain 10;
  Alcotest.(check int) "final value is the younger's" 222 mem.(6)

let test_alloc_backpressure () =
  let cfg = { quick_cfg with Pv_lsq.Lsq.alloc_per_cycle = 8 } in
  let _, b = fresh ~cfg () in
  (* lq_depth = 4: five allocations cannot all fit *)
  let accepted = ref 0 in
  for s = 0 to 5 do
    if b.MI.begin_instance ~seq:s ~group:0 then incr accepted
  done;
  Alcotest.(check int) "limited by queue depth" 4 !accepted

let test_alloc_per_cycle_limit () =
  let cfg = { quick_cfg with Pv_lsq.Lsq.alloc_per_cycle = 1 } in
  let _, b = fresh ~cfg () in
  Alcotest.(check bool) "first" true (b.MI.begin_instance ~seq:0 ~group:0);
  Alcotest.(check bool) "second in same cycle refused" false
    (b.MI.begin_instance ~seq:1 ~group:0);
  step b;
  Alcotest.(check bool) "accepted next cycle" true
    (b.MI.begin_instance ~seq:1 ~group:0)

let test_alloc_delay_gates_issue () =
  let cfg = { quick_cfg with Pv_lsq.Lsq.alloc_delay = 6 } in
  let _, b = fresh ~cfg () in
  ignore (b.MI.begin_instance ~seq:0 ~group:0);
  ignore (b.MI.load_req ~port:0 ~key:(tkey 0) ~addr:5);
  for _ = 1 to 4 do step b done;
  Alcotest.(check bool) "not usable yet" true (MI.poll b ~port:0 = None);
  let _, v = poll_until b ~port:0 in
  Alcotest.(check int) "eventually served" 105 v

let test_op_skip_store () =
  let mem, b = fresh () in
  ignore (b.MI.begin_instance ~seq:0 ~group:0);
  ignore (b.MI.load_req ~port:0 ~key:(tkey 0) ~addr:1);
  Alcotest.(check bool) "skip accepted" true (b.MI.op_skip ~port:1 ~key:(tkey 0));
  let rec drain n = if n > 0 then begin step b; drain (n - 1) end in
  drain 8;
  ignore (poll_until b ~port:0);
  Alcotest.(check bool) "quiesced without a store" true (b.MI.quiesced ());
  Alcotest.(check int) "memory untouched" 101 mem.(1)

let test_direct_port_bandwidth () =
  let _, b = fresh () in
  Alcotest.(check bool) "first direct read" true
    (b.MI.load_req ~port:2 ~key:(tkey 0) ~addr:1);
  Alcotest.(check bool) "second direct read same cycle" true
    (b.MI.load_req ~port:2 ~key:(tkey 1) ~addr:2);
  Alcotest.(check bool) "third exceeds dual-port budget" false
    (b.MI.load_req ~port:2 ~key:(tkey 2) ~addr:3);
  step b;
  Alcotest.(check bool) "budget refilled" true
    (b.MI.load_req ~port:2 ~key:(tkey 2) ~addr:3)

let test_responses_in_port_order () =
  (* responses must come back in request order even when issue reorders *)
  let _, b = fresh () in
  ignore (b.MI.begin_instance ~seq:0 ~group:0);
  ignore (b.MI.begin_instance ~seq:1 ~group:0);
  (* older load blocked by unknown store address; younger load free *)
  ignore (b.MI.load_req ~port:0 ~key:(tkey 0) ~addr:5);
  b.MI.store_addr ~port:1 ~key:(tkey 0) ~addr:5;
  (* seq 0's load now matches its own... no: same-seq store is ROM-later,
     so seq 0's load issues from memory; seq 1's load hits the pending
     store with no value -> must wait, yet was requested second *)
  ignore (b.MI.load_req ~port:0 ~key:(tkey 1) ~addr:5);
  let s0, _ = poll_until b ~port:0 in
  Alcotest.(check int) "first response is seq 0" 0 s0;
  ignore (b.MI.store_req ~port:1 ~key:(tkey 0) ~addr:5 ~value:31);
  let s1, v1 = poll_until b ~port:0 in
  Alcotest.(check (pair int int)) "second is seq 1, forwarded" (1, 31) (s1, v1)

let () =
  Alcotest.run "pv_lsq"
    [
      ( "lsq",
        [
          Alcotest.test_case "load needs allocation" `Quick
            test_load_needs_allocation;
          Alcotest.test_case "load reads memory" `Quick test_load_reads_memory;
          Alcotest.test_case "load waits for store address" `Quick
            test_load_waits_for_store_address;
          Alcotest.test_case "store-to-load forwarding" `Quick
            test_store_to_load_forwarding;
          Alcotest.test_case "commit in order" `Quick test_commit_in_order;
          Alcotest.test_case "allocation backpressure" `Quick
            test_alloc_backpressure;
          Alcotest.test_case "alloc per-cycle limit" `Quick
            test_alloc_per_cycle_limit;
          Alcotest.test_case "alloc delay gates issue" `Quick
            test_alloc_delay_gates_issue;
          Alcotest.test_case "op_skip store" `Quick test_op_skip_store;
          Alcotest.test_case "direct port bandwidth" `Quick
            test_direct_port_bandwidth;
          Alcotest.test_case "responses in port order" `Quick
            test_responses_in_port_order;
        ] );
    ]
